"""The npz half of the campaign-store disk format.

One :class:`~repro.store.frame.CampaignFrame` maps to one ``.npz`` archive:
every column is stored as its exact numpy array under ``col::<name>``, every
nullable column's null mask under ``null::<name>``, plus two scalar entries —
``__kind__`` (the schema kind) and ``__version__`` (the store schema
version).  npy serialization is bit-exact for every dtype involved
(float64, int64, bool, fixed-width unicode), which is what makes the
store's resume guarantee *byte*-identity rather than approximate equality.

Writes are atomic: the archive is written to a ``.tmp`` sibling and moved
into place with :func:`os.replace`, so a crash mid-write can never leave a
truncated frame behind a completed manifest entry.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Union

import numpy as np

from .frame import CampaignFrame
from .schema import SCHEMA_VERSION, StoreError, schema_for

_COLUMN_PREFIX = "col::"
_NULL_PREFIX = "null::"


def write_frame(frame: CampaignFrame, path: Union[str, Path]) -> Path:
    """Serialize one frame to ``path`` (atomically; parents must exist)."""
    path = Path(path)
    arrays = {
        "__kind__": np.asarray(frame.schema.kind),
        "__version__": np.asarray(SCHEMA_VERSION, dtype=np.int64),
    }
    for spec in frame.schema.columns:
        arrays[_COLUMN_PREFIX + spec.name] = frame.column(spec.name)
        if spec.nullable:
            arrays[_NULL_PREFIX + spec.name] = frame.null_mask(spec.name)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        # Uncompressed: shard frames are a few KiB of scalars, and the
        # deflate pass dominated spill time on fine-grained grids.
        np.savez(handle, **arrays)
    os.replace(tmp, path)
    return path


def read_frame(path: Union[str, Path]) -> CampaignFrame:
    """Load one frame written by :func:`write_frame` (schema-validated)."""
    path = Path(path)
    if not path.exists():
        raise StoreError(f"no frame file at {path}")
    with np.load(path, allow_pickle=False) as data:
        if "__kind__" not in data or "__version__" not in data:
            raise StoreError(f"{path} is not a campaign-store frame "
                             "(missing __kind__/__version__)")
        version = int(data["__version__"][()])
        if version != SCHEMA_VERSION:
            raise StoreError(
                f"{path} has store schema version {version}; this build "
                f"reads version {SCHEMA_VERSION}")
        kind = str(data["__kind__"][()])
        schema = schema_for(kind)
        columns = {}
        null_masks = {}
        for spec in schema.columns:
            key = _COLUMN_PREFIX + spec.name
            if key not in data:
                raise StoreError(f"{path}: frame of kind {kind!r} is "
                                 f"missing column {spec.name!r}")
            columns[spec.name] = data[key]
            if spec.nullable:
                null_key = _NULL_PREFIX + spec.name
                if null_key not in data:
                    raise StoreError(f"{path}: nullable column "
                                     f"{spec.name!r} has no null mask")
                null_masks[spec.name] = data[null_key]
    return CampaignFrame(schema, columns, null_masks)
