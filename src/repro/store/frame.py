"""The columnar campaign table: one numpy array per column, masks for null.

:class:`CampaignFrame` is the in-memory half of the campaign store — a
dependency-free structure-of-arrays frame (the environment has numpy only;
the layout is deliberately Arrow-shaped — dense value buffer + validity
bitmap per column — so a later Polars/Arrow backend is a column-by-column
conversion, not a redesign).  It round-trips the repo's result-row
dataclasses exactly:

>>> frame = CampaignFrame.from_rows(result.rows)
>>> frame.to_rows() == result.rows
True

and is what the npz disk format of :mod:`repro.store.disk` serializes.
Filtering/projection return new frames over copied column slices; the lazy
``filter``/``select``/``group_by`` pipeline lives in :mod:`repro.store.query`
(reachable via :meth:`CampaignFrame.lazy`).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from .schema import (
    DTYPES,
    NULL_PLACEHOLDERS,
    PYTHON_CASTS,
    FrameSchema,
    StoreError,
    kind_of_row,
    schema_for,
)


class CampaignFrame:
    """A columnar table of one row kind (see :mod:`repro.store.schema`).

    ``columns`` maps every schema column name to a 1-D numpy array;
    ``null_masks`` maps each *nullable* column to a boolean array that is
    ``True`` where the row holds no value (the dense array then holds a
    placeholder: NaN / 0 / ``False`` / ``""``).
    """

    def __init__(self, schema: FrameSchema,
                 columns: Dict[str, np.ndarray],
                 null_masks: Optional[Dict[str, np.ndarray]] = None):
        null_masks = dict(null_masks) if null_masks else {}
        if set(columns) != set(schema.names()):
            raise StoreError(
                f"column set {sorted(columns)} does not match schema "
                f"{schema.kind!r} columns {sorted(schema.names())}")
        nullable = {spec.name for spec in schema.columns if spec.nullable}
        if set(null_masks) != nullable:
            raise StoreError(
                f"null-mask set {sorted(null_masks)} does not match the "
                f"nullable columns {sorted(nullable)} of schema "
                f"{schema.kind!r}")
        lengths = {name: len(array) for name, array in columns.items()}
        lengths.update({f"null:{name}": len(mask)
                        for name, mask in null_masks.items()})
        if len(set(lengths.values())) > 1:
            raise StoreError(f"ragged columns: {lengths}")
        self.schema = schema
        self._columns = {name: np.asarray(array)
                         for name, array in columns.items()}
        self._null = {name: np.asarray(mask, dtype=bool)
                      for name, mask in null_masks.items()}

    # ------------------------------------------------------------ building
    @classmethod
    def from_rows(cls, rows: Iterable[object],
                  kind: Optional[str] = None) -> "CampaignFrame":
        """Columnarize result-row dataclasses (kind auto-detected).

        An empty ``rows`` needs an explicit ``kind``.  Any non-columnar
        ``result`` payload a row carries (``keep_results=True`` campaigns)
        is dropped — the frame stores the scalar outcome columns only.
        """
        rows = list(rows)
        if kind is None:
            if not rows:
                raise StoreError("cannot infer the frame kind of an empty "
                                 "row list; pass kind=...")
            kind = kind_of_row(rows[0])
        schema = schema_for(kind)
        for row in rows:
            if kind_of_row(row) != kind:
                raise StoreError(
                    f"mixed row kinds: expected {kind!r} rows, got "
                    f"{type(row).__name__}")
        flat = [schema.flatten(row) for row in rows]
        columns: Dict[str, np.ndarray] = {}
        null_masks: Dict[str, np.ndarray] = {}
        for spec in schema.columns:
            raw = [values[spec.name] for values in flat]
            if spec.nullable:
                mask = np.fromiter((value is None for value in raw),
                                   dtype=bool, count=len(raw))
                placeholder = NULL_PLACEHOLDERS[spec.kind]
                raw = [placeholder if value is None else value
                       for value in raw]
                null_masks[spec.name] = mask
            else:
                for index, value in enumerate(raw):
                    if value is None:
                        raise StoreError(
                            f"row {index}: column {spec.name!r} of schema "
                            f"{kind!r} is not nullable but holds None")
            if not raw:
                array = np.empty(0, dtype=DTYPES[spec.kind])
            elif spec.kind == "str":
                # np.str_ widens to the longest value of the column.
                array = np.asarray(raw, dtype=np.str_)
            else:
                array = np.asarray(raw, dtype=DTYPES[spec.kind])
            columns[spec.name] = array
        return cls(schema, columns, null_masks)

    @classmethod
    def concat(cls, frames: Sequence["CampaignFrame"],
               kind: Optional[str] = None) -> "CampaignFrame":
        """Stack frames of one kind (shard merge); order is preserved."""
        frames = list(frames)
        if not frames:
            if kind is None:
                raise StoreError("cannot concat zero frames without kind=...")
            return cls.from_rows([], kind=kind)
        kinds = {frame.schema.kind for frame in frames}
        if kind is not None:
            kinds.add(kind)
        if len(kinds) != 1:
            raise StoreError(f"cannot concat mixed frame kinds {sorted(kinds)}")
        schema = frames[0].schema
        columns = {name: np.concatenate([f._columns[name] for f in frames])
                   for name in schema.names()}
        null_masks = {name: np.concatenate([f._null[name] for f in frames])
                      for name in frames[0]._null}
        return cls(schema, columns, null_masks)

    # ------------------------------------------------------------- reading
    def __len__(self) -> int:
        first = next(iter(self._columns.values()), None)
        return 0 if first is None else len(first)

    @property
    def kind(self) -> str:
        return self.schema.kind

    def column_names(self) -> List[str]:
        return list(self.schema.names())

    def column(self, name: str) -> np.ndarray:
        """The dense value array of one column (nulls hold placeholders)."""
        self.schema.column(name)
        return self._columns[name]

    def null_mask(self, name: str) -> np.ndarray:
        """Boolean array, ``True`` where the row holds no value."""
        spec = self.schema.column(name)
        if not spec.nullable:
            return np.zeros(len(self), dtype=bool)
        return self._null[name]

    def null_count(self, name: str) -> int:
        return int(self.null_mask(name).sum())

    def to_rows(self) -> List[object]:
        """Rebuild the result-row dataclasses, ``None`` restored from masks."""
        if self.schema.unflatten is None:
            raise StoreError(
                f"frame of derived schema {self.schema.kind!r} (projection "
                "or aggregate) cannot be converted back to result rows")
        casts = {spec.name: PYTHON_CASTS[spec.kind]
                 for spec in self.schema.columns}
        rows = []
        for index in range(len(self)):
            values: Dict[str, object] = {}
            for spec in self.schema.columns:
                if spec.nullable and self._null[spec.name][index]:
                    values[spec.name] = None
                else:
                    values[spec.name] = casts[spec.name](
                        self._columns[spec.name][index])
            rows.append(self.schema.unflatten(values))
        return rows

    # ----------------------------------------------------------- filtering
    def _equality_mask(self, name: str, value) -> np.ndarray:
        spec = self.schema.column(name)
        null = self.null_mask(name)
        if value is None:
            if not spec.nullable:
                raise StoreError(f"column {name!r} is not nullable; "
                                 "filtering on None matches nothing")
            return null.copy()
        if isinstance(value, (list, tuple, set, frozenset)):
            mask = np.isin(self._columns[name], list(value))
        else:
            mask = self._columns[name] == value
        return mask & ~null

    def mask_where(self, predicate=None, **equals) -> np.ndarray:
        """The boolean row mask of a filter.

        ``equals`` are per-column conditions: a scalar matches equal values,
        a list/tuple/set matches membership, ``None`` matches null rows.
        ``predicate`` (optional) is called with this frame and must return a
        boolean row mask; it is ANDed with the equality conditions.
        """
        mask = np.ones(len(self), dtype=bool)
        for name, value in equals.items():
            mask &= self._equality_mask(name, value)
        if predicate is not None:
            extra = np.asarray(predicate(self), dtype=bool)
            if extra.shape != mask.shape:
                raise StoreError(
                    f"filter predicate returned shape {extra.shape}; "
                    f"expected ({len(self)},)")
            mask &= extra
        return mask

    def indices_where(self, predicate=None, **equals) -> np.ndarray:
        """Row indices matching a filter (see :meth:`mask_where`)."""
        return np.flatnonzero(self.mask_where(predicate, **equals))

    def take(self, selector) -> "CampaignFrame":
        """A new frame of the selected rows (boolean mask or index array)."""
        selector = np.asarray(selector)
        columns = {name: array[selector]
                   for name, array in self._columns.items()}
        null_masks = {name: mask[selector]
                      for name, mask in self._null.items()}
        return CampaignFrame(self.schema, columns, null_masks)

    def filter(self, predicate=None, **equals) -> "CampaignFrame":
        """The sub-frame of rows matching a filter (see :meth:`mask_where`)."""
        return self.take(self.mask_where(predicate, **equals))

    def select(self, *names: str) -> "CampaignFrame":
        """A projection onto the named columns (derived schema)."""
        schema = self.schema.project(names)
        columns = {name: self._columns[name] for name in names}
        null_masks = {name: self._null[name]
                      for name in names if name in self._null}
        return CampaignFrame(schema, columns, null_masks)

    def lazy(self):
        """A lazy query over this frame (see :mod:`repro.store.query`)."""
        from .query import LazyFrame

        return LazyFrame(self)

    def group_by(self, *keys: str):
        """Group rows by key columns; terminal ``agg`` builds the result."""
        from .query import GroupedFrame

        return GroupedFrame(self, keys)

    # ---------------------------------------------------------- comparison
    def equals(self, other: "CampaignFrame") -> bool:
        """Exact equality: same kind, columns, masks and values.

        Float columns compare NaN-equal; null slots compare equal through
        their masks (their placeholder values are normalized on build).
        """
        if not isinstance(other, CampaignFrame):
            return False
        if self.schema.kind != other.schema.kind:
            return False
        if self.schema.names() != other.schema.names():
            return False
        if len(self) != len(other):
            return False
        for spec in self.schema.columns:
            mine, theirs = self._columns[spec.name], other._columns[spec.name]
            if spec.nullable:
                if not np.array_equal(self._null[spec.name],
                                      other._null[spec.name]):
                    return False
                valid = ~self._null[spec.name]
                mine, theirs = mine[valid], theirs[valid]
            if spec.kind == "float":
                if not np.array_equal(mine, theirs, equal_nan=True):
                    return False
            elif not np.array_equal(mine, theirs):
                return False
        return True

    def __repr__(self) -> str:
        return (f"CampaignFrame(kind={self.schema.kind!r}, rows={len(self)}, "
                f"columns={list(self.schema.names())})")
