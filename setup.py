"""Setuptools shim enabling legacy editable installs (no wheel package needed)."""

from setuptools import setup

setup()
