"""End-to-end attack suite on the asynchronous AES crypto-processor.

The script places the AES netlist with the flat and the hierarchical flows,
then runs both designs through one :class:`AttackCampaign` grid: the batched
trace engine synthesizes all power traces at once, and every design is
attacked with single-bit DPA (Section IV), correlation power analysis
against the selection-bit model, and CPA against the Hamming-weight model —
all 256 key guesses per attack in one matmul.  The flat placement leaks; the
hierarchical one — placed with the security-aware annealer
(``security_weight > 0`` folds rail-capacitance dissymmetry into the
placement cost) — resists at the same trace budget; CPA discloses the key
in a fraction of the traces DPA needs.

With ``--workers N`` the (design × noise) scenarios are sharded across a
process pool; the merged table is identical to the serial one.

Run with:  python examples/dpa_attack_on_aes.py [--traces 600] [--workers 2]
"""

import argparse

from repro.asyncaes import AesArchitecture, AesNetlistGenerator, AesPowerTraceGenerator
from repro.core import AesSboxSelection, AttackCampaign, evaluate_netlist_channels
from repro.crypto import random_key
from repro.pnr import run_flat_flow, run_hierarchical_flow


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--traces", type=int, default=600,
                        help="number of power traces to acquire per design")
    parser.add_argument("--seed", type=int, default=17, help="experiment seed")
    parser.add_argument("--security-weight", type=float, default=4.0,
                        help="dissymmetry weight of the secure flow's "
                             "annealing cost (0 = plain HPWL)")
    parser.add_argument("--workers", type=int, default=1,
                        help="campaign shard pool size (1 = serial)")
    args = parser.parse_args()

    key = random_key(16, seed=args.seed)
    architecture = AesArchitecture(word_width=32, detail=0.15)

    print("placing the AES with the flat reference flow (AES_v2)...")
    flat_netlist = AesNetlistGenerator(architecture, name="aes_v2").build()
    run_flat_flow(flat_netlist, seed=args.seed, effort=0.8)

    print("placing the AES with the hierarchical secure flow (AES_v1)...")
    hier_netlist = AesNetlistGenerator(architecture, name="aes_v1").build()
    run_hierarchical_flow(hier_netlist, seed=args.seed, effort=0.8,
                          security_weight=args.security_weight)

    for label, netlist in (("AES_v2 flat", flat_netlist),
                           ("AES_v1 hier", hier_netlist)):
        report = evaluate_netlist_channels(netlist, design_name=label)
        print(f"{label}: channel criterion max dA = {report.max_dissymmetry:.2f}, "
              f"mean dA = {report.mean_dissymmetry:.3f}")

    # The attacker tries every output bit of the attacked S-box byte and keeps
    # the most leaky one — emulate that by picking the bit whose first-round
    # channel shows the largest dissymmetry on the flat (leaking) design.
    probe = AesPowerTraceGenerator(flat_netlist, key, architecture=architecture)
    best_bit = max(range(8), key=lambda j: probe.channel_dissymmetry(
        "bytesub0_to_sr0", 24 + j))
    selection = AesSboxSelection(byte_index=0, bit_index=best_bit)

    campaign = AttackCampaign(key, architecture=architecture,
                              mtd_start=100, mtd_step=100)
    campaign.add_design("AES_v2 (flat P&R)", flat_netlist)
    campaign.add_design("AES_v1 (hierarchical P&R)", hier_netlist)
    campaign.add_selection(selection)
    campaign.add_attack("dpa")
    campaign.add_attack("cpa", model="bit")
    campaign.add_attack("cpa", model="hw")
    result = campaign.run(trace_count=args.traces, seed=args.seed + 1,
                          workers=args.workers)

    print(f"\ntrue key byte 0: {key[0]:#04x}")
    print(result.table())

    flat_dpa = result.row("AES_v2 (flat P&R)", attack="dpa")
    flat_cpa = result.row("AES_v2 (flat P&R)", attack="cpa-bit")
    hier_dpa = result.row("AES_v1 (hierarchical P&R)", attack="dpa")
    print(f"\nSummary: on the flat design DPA ranks the true key byte "
          f"{flat_dpa.rank_of_correct} (disclosure at {flat_dpa.disclosure} "
          f"traces) and CPA discloses it at {flat_cpa.disclosure} traces, "
          f"while the hierarchical design ranks it {hier_dpa.rank_of_correct} "
          f"with the same {args.traces} traces — the residual leak identified "
          "by the paper is the routing-capacitance mismatch, and the "
          "hierarchical flow suppresses it.")


if __name__ == "__main__":
    main()
