"""End-to-end DPA attack on the asynchronous AES crypto-processor.

The script places the AES netlist with the flat and the hierarchical flows,
then runs both designs through one :class:`AttackCampaign`: the batched trace
engine synthesizes all power traces at once, the vectorized DPA of Section IV
(S-box selection function, 256 key guesses evaluated in one matmul) attacks
key byte 0, and the campaign emits a single comparison table.  The flat
placement leaks; the hierarchical one resists at the same trace budget.

Run with:  python examples/dpa_attack_on_aes.py [--traces 600]
"""

import argparse

from repro.asyncaes import AesArchitecture, AesNetlistGenerator, AesPowerTraceGenerator
from repro.core import AesSboxSelection, AttackCampaign, evaluate_netlist_channels
from repro.crypto import random_key
from repro.pnr import run_flat_flow, run_hierarchical_flow


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--traces", type=int, default=600,
                        help="number of power traces to acquire per design")
    parser.add_argument("--seed", type=int, default=7, help="experiment seed")
    args = parser.parse_args()

    key = random_key(16, seed=args.seed)
    architecture = AesArchitecture(word_width=32, detail=0.15)

    print("placing the AES with the flat reference flow (AES_v2)...")
    flat_netlist = AesNetlistGenerator(architecture, name="aes_v2").build()
    run_flat_flow(flat_netlist, seed=args.seed, effort=0.8)

    print("placing the AES with the hierarchical secure flow (AES_v1)...")
    hier_netlist = AesNetlistGenerator(architecture, name="aes_v1").build()
    run_hierarchical_flow(hier_netlist, seed=args.seed, effort=0.8)

    for label, netlist in (("AES_v2 flat", flat_netlist),
                           ("AES_v1 hier", hier_netlist)):
        report = evaluate_netlist_channels(netlist, design_name=label)
        print(f"{label}: channel criterion max dA = {report.max_dissymmetry:.2f}, "
              f"mean dA = {report.mean_dissymmetry:.3f}")

    # The attacker tries every output bit of the attacked S-box byte and keeps
    # the most leaky one — emulate that by picking the bit whose first-round
    # channel shows the largest dissymmetry on the flat (leaking) design.
    probe = AesPowerTraceGenerator(flat_netlist, key, architecture=architecture)
    best_bit = max(range(8), key=lambda j: probe.channel_dissymmetry(
        "bytesub0_to_sr0", 24 + j))
    selection = AesSboxSelection(byte_index=0, bit_index=best_bit)

    campaign = AttackCampaign(key, architecture=architecture,
                              mtd_start=100, mtd_step=100)
    campaign.add_design("AES_v2 (flat P&R)", flat_netlist)
    campaign.add_design("AES_v1 (hierarchical P&R)", hier_netlist)
    campaign.add_selection(selection)
    result = campaign.run(trace_count=args.traces, seed=args.seed + 1)

    print(f"\ntrue key byte 0: {key[0]:#04x}")
    print(result.table())

    flat_row = result.row("AES_v2 (flat P&R)")
    hier_row = result.row("AES_v1 (hierarchical P&R)")
    print(f"\nSummary: the flat design ranks the true key byte "
          f"{flat_row.rank_of_correct} while the hierarchical design ranks it "
          f"{hier_row.rank_of_correct} with the same {args.traces} traces — "
          "the residual leak identified by the paper is the routing-capacitance "
          "mismatch, and the hierarchical flow suppresses it.")


if __name__ == "__main__":
    main()
