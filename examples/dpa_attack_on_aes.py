"""End-to-end DPA attack on the asynchronous AES crypto-processor.

The script places the AES netlist with the flat and the hierarchical flows,
synthesizes power traces for random plaintexts on both, and runs the
first-round DPA of Section IV (S-box selection function, 256 key guesses) to
recover key byte 0.  The flat placement leaks; the hierarchical one resists at
the same trace budget.

Run with:  python examples/dpa_attack_on_aes.py [--traces 600]
"""

import argparse

from repro.asyncaes import AesArchitecture, AesNetlistGenerator, AesPowerTraceGenerator
from repro.core import AesSboxSelection, dpa_attack, evaluate_netlist_channels
from repro.crypto import random_key
from repro.crypto.keys import PlaintextGenerator
from repro.pnr import run_flat_flow, run_hierarchical_flow


def attack(netlist, architecture, key, plaintexts, label):
    generator = AesPowerTraceGenerator(netlist, key, architecture=architecture)
    traces = generator.trace_set(plaintexts)
    # The attacker tries every output bit of the attacked S-box byte and keeps
    # the most leaky one — emulate that by picking the bit whose first-round
    # channel shows the largest dissymmetry.
    best_bit = max(range(8), key=lambda j: generator.channel_dissymmetry(
        "bytesub0_to_sr0", 24 + j))
    selection = AesSboxSelection(byte_index=0, bit_index=best_bit)
    result = dpa_attack(traces, selection)
    print(f"\n--- {label} ---")
    report = evaluate_netlist_channels(netlist, design_name=label)
    print(f"channel criterion: max dA = {report.max_dissymmetry:.2f}, "
          f"mean dA = {report.mean_dissymmetry:.3f}")
    print(f"selection function: {selection.name} over {len(traces)} traces")
    print(f"best guess       : {result.best_guess:#04x} "
          f"(true key byte {key[0]:#04x})")
    print(f"rank of true key : {result.rank_of(key[0])} / 256")
    print(f"discrimination   : {result.discrimination_ratio(key[0]):.2f} "
          "(peak of the true key / best wrong peak)")
    return result


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--traces", type=int, default=600,
                        help="number of power traces to acquire per design")
    parser.add_argument("--seed", type=int, default=7, help="experiment seed")
    args = parser.parse_args()

    key = random_key(16, seed=args.seed)
    architecture = AesArchitecture(word_width=32, detail=0.15)
    plaintexts = PlaintextGenerator(seed=args.seed + 1).batch(args.traces)

    print("placing the AES with the flat reference flow (AES_v2)...")
    flat_netlist = AesNetlistGenerator(architecture, name="aes_v2").build()
    run_flat_flow(flat_netlist, seed=args.seed, effort=0.8)

    print("placing the AES with the hierarchical secure flow (AES_v1)...")
    hier_netlist = AesNetlistGenerator(architecture, name="aes_v1").build()
    run_hierarchical_flow(hier_netlist, seed=args.seed, effort=0.8)

    flat_result = attack(flat_netlist, architecture, key, plaintexts,
                         "AES_v2 (flat place and route)")
    hier_result = attack(hier_netlist, architecture, key, plaintexts,
                         "AES_v1 (hierarchical place and route)")

    print("\nSummary: the flat design ranks the true key byte "
          f"{flat_result.rank_of(key[0])} while the hierarchical design ranks it "
          f"{hier_result.rank_of(key[0])} with the same {args.traces} traces — "
          "the residual leak identified by the paper is the routing-capacitance "
          "mismatch, and the hierarchical flow suppresses it.")


if __name__ == "__main__":
    main()
