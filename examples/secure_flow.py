"""Run the complete secure design flow of Section VI on the asynchronous AES:
flat reference place-and-route vs the proposed hierarchical flow, followed by
the dissymmetry-criterion evaluation (the Table 2 experiment).

Run with:  python examples/secure_flow.py            (reduced, ~30 s)
           python examples/secure_flow.py --full     (full 32-bit width)
"""

import argparse

from repro.asyncaes import AesArchitecture, AesNetlistGenerator
from repro.core import FlowConfig, compare_flat_vs_hierarchical, compare_reports


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="use the full 32-bit architecture (slower)")
    parser.add_argument("--seed", type=int, default=1, help="place-and-route seed")
    args = parser.parse_args()

    architecture = AesArchitecture(word_width=32 if args.full else 16,
                                   detail=0.2 if args.full else 0.1)
    print(f"asynchronous AES architecture: {len(architecture.blocks)} blocks, "
          f"{len(architecture.channels)} channel buses, "
          f"~{architecture.total_gate_budget()} gate budget")

    config = FlowConfig(criterion_bound=0.5, seed=args.seed, effort=0.8,
                        max_iterations=2)
    comparison = compare_flat_vs_hierarchical(
        lambda: AesNetlistGenerator(architecture, name="async_aes").build(),
        config=config, design_name="async_aes",
    )

    print()
    print(comparison.flat.design.summary())
    print(comparison.hierarchical.design.summary())
    print()
    print(compare_reports(comparison.flat.criterion,
                          comparison.hierarchical.criterion, count=5))
    print()
    print(comparison.summary())
    print()
    print("Paper (Table 2): flat flow reaches a criterion of 1.25 while the")
    print("hierarchical flow keeps every channel below 0.13, for ~20 % more area.")


if __name__ == "__main__":
    main()
