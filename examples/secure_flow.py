"""The complete secure design flow of Section VI on the asynchronous AES,
run through the hardening pass manager:

1. the flat reference flow (AES_v2) — a `flat_pipeline()` configuration;
2. the hierarchical constrained flow (AES_v1) — `hierarchical_pipeline()`;
3. the criterion-driven hardening pipeline — the flat base flow plus the
   closed `repair-until(d_A <= bound)` loop (fence resize, criterion-guided
   re-placement, dummy-load equalization), with full per-pass provenance.

The Table-2 statement becomes three-way: the hierarchical flow improves on
flat by construction, and the repair loop drives the criterion below both.

Run with:  python examples/secure_flow.py            (reduced, ~30 s)
           python examples/secure_flow.py --full     (full 32-bit width)
"""

import argparse

from repro.asyncaes import AesArchitecture, AesNetlistGenerator
from repro.core import compare_reports, evaluate_netlist_channels
from repro.harden import flat_pipeline, hierarchical_pipeline, hardening_pipeline


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="use the full 32-bit architecture (slower)")
    parser.add_argument("--seed", type=int, default=1, help="place-and-route seed")
    parser.add_argument("--bound", type=float, default=0.05,
                        help="repair-until criterion bound")
    args = parser.parse_args()

    architecture = AesArchitecture(word_width=32 if args.full else 16,
                                   detail=0.2 if args.full else 0.1)
    effort = 0.8
    print(f"asynchronous AES architecture: {len(architecture.blocks)} blocks, "
          f"{len(architecture.channels)} channel buses, "
          f"~{architecture.total_gate_budget()} gate budget")

    def fresh(name):
        return AesNetlistGenerator(architecture, name=name).build()

    # 1/2 — the classic flows, as base pass pipelines.
    flat = flat_pipeline(effort=effort).run(
        fresh("async_aes"), seed=args.seed, design_name="async_aes_v2_flat")
    hier = hierarchical_pipeline(effort=effort).run(
        fresh("async_aes"), seed=args.seed, design_name="async_aes_v1_hier")

    # 3 — the countermeasure layer: flat base + repair loop.
    pipeline = hardening_pipeline(base="flat", bound=args.bound, effort=effort)
    hardened = pipeline.run(fresh("async_aes"), seed=args.seed,
                            design_name="async_aes_hardened")

    print()
    print(flat.design.summary())
    print(hier.design.summary())
    print(hardened.design.summary())
    print()
    print(compare_reports(flat.criterion, hier.criterion, count=5))
    print()
    print("--- hardened design (flat base + repair loop) ---")
    print(hardened.summary())
    print(hardened.provenance_table())
    print()
    flat_max = flat.criterion.max_dissymmetry
    hier_max = hier.criterion.max_dissymmetry
    hard_max = hardened.max_dissymmetry
    print(f"max dA: flat {flat_max:.3f} -> hierarchical {hier_max:.3f} "
          f"-> hardened {hard_max:.4f} "
          f"(x{flat_max / max(hard_max, 1e-12):.0f} vs flat)")
    print()
    print("Paper (Table 2): flat flow reaches a criterion of 1.25 while the")
    print("hierarchical flow keeps every channel below 0.13, for ~20 % more")
    print("area; the repair loop closes the residual imbalance with dummy")
    print("loads after constraining placement, at a few pF of trim load.")

    # The wrapped flows stay available for scripts that want one call:
    # repro.pnr.run_flat_flow / run_hierarchical_flow are these pipelines.
    report = evaluate_netlist_channels(hardened.netlist,
                                       design_name="hardened (recheck)")
    assert report.max_dissymmetry == hard_max


if __name__ == "__main__":
    main()
