"""Reproduction of the Fig. 7 study: how a net-capacitance imbalance at each
logical level of the dual-rail XOR shapes the DPA signature.

Run with:  python examples/capacitance_study.py
"""

import numpy as np

from repro.circuits import build_dual_rail_xor
from repro.core import FormalCurrentModel, find_peaks, signature_from_traces, signature_terms
from repro.electrical import per_computation_currents

PAIRS = [(0, 0), (1, 1), (0, 1), (1, 0)]

CASES = {
    "balanced (Cd = 8 fF)": [],
    "a: Cl31 = 16 fF": [(3, 1, 16.0)],
    "b: Cl21 = 16 fF": [(2, 1, 16.0)],
    "c: Cl11 = Cl12 = 16 fF": [(1, 1, 16.0), (1, 2, 16.0)],
    "d: Cl11 = Cl12 = 32 fF": [(1, 1, 32.0), (1, 2, 32.0)],
}


def ascii_plot(waveform, width=72, height=9) -> str:
    """A small ASCII rendering of |S(t)| (the paper's oscilloscope view)."""
    samples = np.abs(waveform.samples)
    if samples.max() == 0.0:
        return "(flat zero signature)"
    bins = np.array_split(samples, width)
    profile = np.array([chunk.max() for chunk in bins])
    profile = profile / profile.max()
    rows = []
    for row in range(height, 0, -1):
        threshold = row / height
        rows.append("".join("#" if value >= threshold else " " for value in profile))
    rows.append("-" * width)
    return "\n".join(rows)


def main() -> None:
    for label, modifications in CASES.items():
        block = build_dual_rail_xor("xor")
        for level, position, cap in modifications:
            block.set_level_cap(level, position, cap)

        waves = per_computation_currents(block, PAIRS)
        signature = signature_from_traces(waves[:2], waves[2:])
        formal = signature_terms(FormalCurrentModel.from_block(block))
        peaks = find_peaks(signature, threshold_ratio=0.4)

        print(f"\n=== {label} ===")
        print(f"signature peak : {signature.max_abs():.3e} A   "
              f"energy: {signature.energy():.3e} A^2.s   "
              f"peak count: {len(peaks)}   "
              f"dominant level: {formal.dominant_level()}")
        print(ascii_plot(signature))

    print("\nReading: the deeper the unbalanced node (case a), the later the "
          "signature peak; an imbalance near the inputs (cases c/d) shifts the "
          "whole curve, and doubling the imbalance amplifies it — Fig. 7 of the paper.")


if __name__ == "__main__":
    main()
