"""Reproduction of the Fig. 7 study: how a net-capacitance imbalance at each
logical level of the dual-rail XOR shapes the DPA signature.

Every capacitance case is registered as one design of a single
:class:`AttackCampaign` (the gate-level XOR traces enter as a custom trace
source), so the same batched engine that attacks the AES also quantifies the
per-case leakage — one table, one orchestrator.  The ASCII signatures of the
paper's oscilloscope view are printed per case as before.

Run with:  python examples/capacitance_study.py
"""

import numpy as np

from repro.circuits import build_dual_rail_xor
from repro.core import (
    AesAddRoundKeySelection,
    AttackCampaign,
    FormalCurrentModel,
    TraceSet,
    find_peaks,
    signature_from_traces,
    signature_terms,
)
from repro.electrical import per_computation_currents

PAIRS = [(0, 0), (1, 1), (0, 1), (1, 0)]

CASES = {
    "balanced (Cd = 8 fF)": [],
    "a: Cl31 = 16 fF": [(3, 1, 16.0)],
    "b: Cl21 = 16 fF": [(2, 1, 16.0)],
    "c: Cl11 = Cl12 = 16 fF": [(1, 1, 16.0), (1, 2, 16.0)],
    "d: Cl11 = Cl12 = 32 fF": [(1, 1, 32.0), (1, 2, 32.0)],
}

#: Pseudo-plaintexts whose byte 0 carries the XOR output a ^ b, so the AES
#: AddRoundKey selection with guess 0 partitions traces by the produced rail
#: (the known-value leakage assessment of Section IV).
PSEUDO_PLAINTEXTS = [[a ^ b] + [0] * 15 for a, b in PAIRS]


def xor_trace_source(block):
    """A campaign trace source: the four per-computation current traces."""

    def source(plaintexts, noise):
        waveforms = per_computation_currents(block, PAIRS)
        traces = TraceSet()
        for plaintext, waveform in zip(plaintexts, waveforms):
            traces.add(waveform, plaintext)
        if noise is not None:
            return TraceSet.from_matrix(
                noise.apply_matrix(traces.matrix(), traces.dt),
                plaintexts, traces.dt)
        return traces

    return source


def ascii_plot(waveform, width=72, height=9) -> str:
    """A small ASCII rendering of |S(t)| (the paper's oscilloscope view)."""
    samples = np.abs(waveform.samples)
    if samples.max() == 0.0:
        return "(flat zero signature)"
    bins = np.array_split(samples, width)
    profile = np.array([chunk.max() for chunk in bins])
    profile = profile / profile.max()
    rows = []
    for row in range(height, 0, -1):
        threshold = row / height
        rows.append("".join("#" if value >= threshold else " " for value in profile))
    rows.append("-" * width)
    return "\n".join(rows)


def main() -> None:
    campaign = AttackCampaign(guesses=[0, 1])
    selection = AesAddRoundKeySelection(byte_index=0, bit_index=0)
    campaign.add_selection(selection, correct_guess=0)

    for label, modifications in CASES.items():
        block = build_dual_rail_xor("xor")
        for level, position, cap in modifications:
            block.set_level_cap(level, position, cap)
        campaign.add_design(label, trace_source=xor_trace_source(block))

        waves = per_computation_currents(block, PAIRS)
        signature = signature_from_traces(waves[:2], waves[2:])
        formal = signature_terms(FormalCurrentModel.from_block(block))
        peaks = find_peaks(signature, threshold_ratio=0.4)

        print(f"\n=== {label} ===")
        print(f"signature peak : {signature.max_abs():.3e} A   "
              f"energy: {signature.energy():.3e} A^2.s   "
              f"peak count: {len(peaks)}   "
              f"dominant level: {formal.dominant_level()}")
        print(ascii_plot(signature))

    result = campaign.run(plaintexts=PSEUDO_PLAINTEXTS, compute_disclosure=False)
    print("\nDPA bias peak per capacitance case "
          "(one batched campaign over all cases):")
    print(result.table())

    print("\nReading: the deeper the unbalanced node (case a), the later the "
          "signature peak; an imbalance near the inputs (cases c/d) shifts the "
          "whole curve, and doubling the imbalance amplifies it — Fig. 7 of the paper.")


if __name__ == "__main__":
    main()
