"""Certification-style leakage assessment of the flat vs hierarchical AES.

Before (or instead of) mounting a key-recovery attack, a real evaluator runs
attack-independent leakage detection: the TVLA fixed-vs-random Welch t-test
and the per-sample SNR.  This script places the AES netlist with both flows
and drives the streaming assessment pipeline of `repro.assess` through one
`AttackCampaign`:

1. **TVLA verdict** — at the same trace budget and measurement noise, the
   **flat** reference placement fails the non-specific fixed-vs-random
   t-test (max |t| > 4.5: some sample distinguishes the fixed plaintext
   population, i.e. the traces are data-dependent), while the
   **hierarchical** secure placement stays under the threshold — the
   routing-capacitance mismatch of equation (12) is suppressed below the
   noise.  Notably, the CPA key-recovery attack fails on *both* designs at
   this noise level: leakage detection sees what the attack cannot yet
   exploit, which is exactly why evaluation labs run TVLA first.
2. **Leak localization** — a low-noise probe of the flat design: the
   *specific* t-test partitioned by a known-key S-box bit and the per-sample
   SNR locate where the first-round intermediate leaks, and CPA confirms by
   disclosing the sub-key.
3. **Detection curve** — max |t| vs trace count on the flat design, streamed
   chunk by chunk: the leak crosses the 4.5 threshold within a few hundred
   traces.

Everything streams in bounded memory (`streaming=True` / `trace_chunks`):
traces are consumed as `chunk` blocks through mergeable moment accumulators,
so the same campaign scales to millions of traces, and the rows are
numerically identical to an in-memory run.

Run with:  python examples/leakage_assessment.py [--traces 600] [--chunk 256]
"""

import argparse

from repro.asyncaes import (
    AesArchitecture,
    AesNetlistGenerator,
    AesPowerTraceGenerator,
    fixed_vs_random_plaintexts,
)
from repro.assess import ttest_fixed_vs_random
from repro.core import AesSboxSelection, AttackCampaign
from repro.crypto import random_key
from repro.electrical import GaussianNoise
from repro.pnr import run_flat_flow, run_hierarchical_flow


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--traces", type=int, default=600,
                        help="traces per acquisition (attack and TVLA passes)")
    parser.add_argument("--chunk", type=int, default=256,
                        help="streaming chunk size (bounded-memory block)")
    parser.add_argument("--sigma", type=float, default=6e-4,
                        help="acquisition noise std for the TVLA verdict (A)")
    parser.add_argument("--probe-sigma", type=float, default=2e-5,
                        help="noise std of the low-noise localization probe")
    parser.add_argument("--seed", type=int, default=3, help="experiment seed")
    args = parser.parse_args()

    key = random_key(16, seed=args.seed)
    architecture = AesArchitecture(word_width=8, detail=0.05)

    print("placing the AES with the flat reference flow (AES_v2)...")
    flat_netlist = AesNetlistGenerator(architecture, name="aes_v2").build()
    run_flat_flow(flat_netlist, seed=args.seed, effort=0.3)

    print("placing the AES with the hierarchical secure flow (AES_v1)...")
    hier_netlist = AesNetlistGenerator(architecture, name="aes_v1").build()
    run_hierarchical_flow(hier_netlist, seed=args.seed, effort=1.0)

    # The 8-bit channels carry the low byte of each 32-bit column word, so
    # byte 3 is the first-round intermediate that physically crosses them;
    # probe the S-box output bit whose flat-placed rails mismatch the most.
    probe = AesPowerTraceGenerator(flat_netlist, key, architecture=architecture)
    best_bit = max(range(8), key=lambda j: probe.channel_dissymmetry(
        "bytesub0_to_sr0", j))
    selection = AesSboxSelection(byte_index=3, bit_index=best_bit)

    # ---- 1. the TVLA verdict at acquisition noise -------------------------
    verdict = AttackCampaign(key, architecture=architecture)
    verdict.add_design("AES_v2 (flat P&R)", flat_netlist)
    verdict.add_design("AES_v1 (hierarchical P&R)", hier_netlist)
    verdict.add_selection(selection)
    verdict.add_attack("cpa", model="hw")
    verdict.add_assessment("tvla")
    verdict.add_noise("acquisition", lambda: GaussianNoise(args.sigma, seed=11))

    print(f"\nstreaming TVLA: {args.traces} traces per pass, "
          f"chunks of {args.chunk} ...")
    result = verdict.run(args.traces, seed=args.seed + 2,
                         streaming=True, chunk_size=args.chunk,
                         compute_disclosure=False)
    print("\n" + result.assessment_table())
    print("\n" + result.table())

    flat_tvla = result.assessment_row("AES_v2 (flat P&R)", assessment="tvla")
    hier_tvla = result.assessment_row("AES_v1 (hierarchical P&R)",
                                      assessment="tvla")
    flat_cpa = result.row("AES_v2 (flat P&R)", attack="cpa-hw")
    print(f"\nTVLA verdict at {args.traces} traces: flat max |t| = "
          f"{flat_tvla.peak:.1f} ({'FAILS' if flat_tvla.flagged else 'passes'}), "
          f"hierarchical max |t| = {hier_tvla.peak:.1f} "
          f"({'FAILS' if hier_tvla.flagged else 'passes'}) — threshold 4.5.\n"
          f"CPA at the same noise ranks the true sub-key "
          f"{flat_cpa.rank_of_correct}/256 on the flat design: the t-test "
          "detects leakage no attack exploits yet.")

    # ---- 2. low-noise localization of the flat leak -----------------------
    deep_dive = AttackCampaign(key, architecture=architecture,
                               mtd_start=100, mtd_step=100)
    deep_dive.add_design("AES_v2 (flat P&R)", flat_netlist)
    deep_dive.add_selection(selection)
    deep_dive.add_attack("cpa", model="hw")
    deep_dive.add_assessment("tvla-specific", selection=selection)
    deep_dive.add_assessment("snr", selection=selection, classes="hw")
    deep_dive.add_noise("em-probe",
                        lambda: GaussianNoise(args.probe_sigma, seed=12))
    localized = deep_dive.run(args.traces, seed=args.seed + 2,
                              streaming=True, chunk_size=args.chunk)
    print("\nlow-noise probe of the flat design "
          f"(sigma = {args.probe_sigma:g} A):")
    print(localized.assessment_table())
    specific = localized.assessment_row(
        "AES_v2 (flat P&R)", assessment=f"tvla-specific[{selection.name}]")
    snr_row = localized.assessment_row(
        "AES_v2 (flat P&R)", assessment=f"snr[{selection.name},hw]")
    cpa_row = localized.rows[0]
    print(f"\nthe specific t-test on SBOX(p[3] ^ k[3]) bit {best_bit} peaks at "
          f"|t| = {specific.peak:.1f}; SNR peaks at "
          f"{snr_row.result.max_snr:.3f} on sample "
          f"{snr_row.result.peak_sample}; CPA confirms by ranking the true "
          f"sub-key {cpa_row.rank_of_correct} "
          f"(disclosure at {cpa_row.disclosure} traces).")

    # ---- 3. the detection curve, streamed ---------------------------------
    print("\nmax-|t| vs trace count (flat design, fixed-vs-random):")
    plaintexts, labels = fixed_vs_random_plaintexts(
        args.traces, seed=args.seed + 2 + 0x7F4A)
    generator = AesPowerTraceGenerator(
        flat_netlist, key, architecture=architecture,
        noise=GaussianNoise(args.sigma, seed=11))
    boundaries = list(range(args.chunk, args.traces + 1, args.chunk))
    curve = ttest_fixed_vs_random(
        generator.trace_chunks(plaintexts, args.chunk),
        labels, curve_boundaries=boundaries).curve
    for count, max_t in curve:
        bar = "#" * int(min(max_t, 20) * 2)
        marker = " <-- leaks" if max_t > 4.5 else ""
        print(f"  {count:>6d} traces: max|t| = {max_t:6.2f} {bar}{marker}")


if __name__ == "__main__":
    main()
