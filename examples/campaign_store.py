"""A resumable, queryable campaign: the columnar store end to end.

Campaign grids multiply fast — this script runs a (designs x noise x
attacks) grid with ``store=``, so every completed (noise x design)
scenario is spilled to a columnar shard the moment it finishes:

1. **Spill + resume** — the first `run(..., store=dir)` writes one npz
   frame per scenario behind a crash-safe JSON manifest; the second
   invocation resumes from the manifest (nothing re-runs) and returns the
   byte-identical table.  Kill the script mid-run and restart it to see a
   genuine partial resume.
2. **Offline loading** — `load_campaign_result(dir)` rebuilds the result
   from disk alone (works for crashed, partial stores too), so analysis
   needs no re-measurement.
3. **Query layer** — MTD percentiles per design (conditional on
   disclosure, undisclosed counted separately), the disclosed-rate pivot
   design x attack, and a protection-vs-cost pareto front over the rows.

Run with:  python examples/campaign_store.py [--traces 400]
           [--store-dir runs/store-demo]
"""

import argparse
from pathlib import Path

import numpy as np

from repro.core import AesSboxSelection, AttackCampaign, TraceSet
from repro.crypto.aes_tables import SBOX
from repro.electrical import GaussianNoise
from repro.store import (
    load_campaign_result,
    mtd_percentiles,
    pareto_front,
    verdict_pivot,
)

KEY = list(range(16))
_SBOX = np.asarray(SBOX, dtype=np.int64)
_POP = np.asarray([bin(v).count("1") for v in range(256)], dtype=np.int64)


def leaky_source(scale):
    """A synthetic leaky design: sample 7 leaks ``scale * HW(SBOX(p0^k0))``."""
    def source(plaintexts, noise):
        plaintexts = [list(p) for p in plaintexts]
        points = np.asarray(plaintexts, dtype=np.int64)
        matrix = np.zeros((len(plaintexts), 24))
        matrix[:, 7] += scale * _POP[_SBOX[points[:, 0] ^ KEY[0]]]
        if noise is not None:
            matrix = noise.apply_matrix(matrix, 1e-9, 0.0)
        return TraceSet.from_matrix(matrix, plaintexts, 1e-9)
    return source


def build_campaign():
    campaign = AttackCampaign(KEY, mtd_start=50, mtd_step=50)
    # Decreasing leak scale stands in for increasingly hardened designs.
    for label, scale in [("leaky", 0.30), ("damped", 0.10),
                         ("hardened", 0.02)]:
        campaign.add_design(label, trace_source=leaky_source(scale))
    campaign.add_selection(AesSboxSelection(byte_index=0, bit_index=3))
    campaign.add_attack("dpa")
    campaign.add_attack("cpa", model="hw")
    for index in range(3):
        campaign.add_noise(f"noise-{index}",
                           (lambda i=index: GaussianNoise(0.1 + 0.2 * i,
                                                          seed=i)))
    return campaign


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--traces", type=int, default=400)
    parser.add_argument("--store-dir", default="runs/store-demo")
    args = parser.parse_args()
    store = Path(args.store_dir)

    print(f"== run 1: spilling per-scenario shards to {store} ==")
    first = build_campaign().run(args.traces, seed=3, store=store)
    print(first.table())

    print("\n== run 2: same grid, same store -> resumed from the manifest ==")
    second = build_campaign().run(args.traces, seed=3, store=store)
    print("byte-identical table:", second.table() == first.table())

    print("\n== offline: load from disk, no campaign object needed ==")
    loaded = load_campaign_result(store)
    frame = loaded.frame()
    print(f"{len(frame)} rows, columns {frame.column_names()}")

    print("\n== MTD percentiles per design (conditional on disclosure) ==")
    stats = mtd_percentiles(frame, by=("design",), q=(50, 90))
    for index in range(len(stats)):
        print(f"  {stats.column('design')[index]:<10s} "
              f"p50={stats.column('p50')[index]:7.1f} "
              f"p90={stats.column('p90')[index]:7.1f} "
              f"undisclosed={stats.column('undisclosed')[index]}/"
              f"{stats.column('rows')[index]}")

    print("\n== disclosed-rate pivot ==")
    print(verdict_pivot(frame).as_table())

    print("\n== pareto front: disclosure resistance vs best-peak cost ==")
    resistant = frame.filter(disclosure=None)
    print(f"  {len(resistant)} rows never disclosed within "
          f"{args.traces} traces")
    front = pareto_front(frame, maximize=("disclosure",),
                         minimize=("best_peak",))
    for row in front.to_rows():
        print(f"  {row.design:<10s} {row.attack:<8s} {row.noise:<9s} "
              f"MTD={row.disclosure} peak={row.best_peak:.3e}")


if __name__ == "__main__":
    main()
