"""Quickstart: build the paper's dual-rail XOR, check its balance, simulate it
and look at its current profile and DPA signature.

Run with:  python examples/quickstart.py
"""

from repro.circuits import (
    build_dual_rail_xor,
    check_structural_balance,
    simulate_two_operand_block,
)
from repro.core import FormalCurrentModel, signature_from_traces, signature_terms
from repro.electrical import per_computation_currents
from repro.graph import build_circuit_graph, compute_levels, switching_profile


def main() -> None:
    # 1. Build the secured dual-rail XOR of Fig. 4 (four-phase handshake,
    #    1-of-2 encoded data, balanced paths).  Every internal net starts with
    #    the paper's default capacitance Cd = 8 fF.
    xor = build_dual_rail_xor("xor")
    print(f"dual-rail XOR: {xor.netlist.instance_count} gates, "
          f"{xor.netlist.net_count} nets, {xor.depth} logical levels")
    print("structural balance problems:", check_structural_balance(xor) or "none")

    # 2. Simulate all four computations through the four-phase protocol and
    #    check the truth table and the constant transition count.
    pairs = [(0, 0), (0, 1), (1, 0), (1, 1)]
    result = simulate_two_operand_block(xor, pairs)
    print("outputs            :", result.outputs[0], "(expected [0, 1, 1, 0])")
    print("transitions/compute:", result.per_computation_counts)

    # 3. Graph analysis of Section III: levels and the (Nt, Nc, Nij) profile.
    graph = build_circuit_graph(xor.netlist)
    levels = compute_levels(graph)
    profile = switching_profile(simulate_two_operand_block(xor, [(1, 0)]).trace, levels)
    print(f"Nc = {profile.nc}, Nt = {profile.nt}, Nij = {profile.nij} "
          "(paper: Nt = Nc = 4, one gate per level)")

    # 4. Electrical signature (equations (7)-(12)): null when balanced,
    #    peaks once a routing capacitance is unbalanced.
    waves = per_computation_currents(xor, [(0, 0), (1, 1), (0, 1), (1, 0)])
    balanced_signature = signature_from_traces(waves[:2], waves[2:])
    print(f"balanced signature peak    : {balanced_signature.max_abs():.3e} A")

    xor.set_level_cap(3, 1, 16.0)          # the Fig. 7a experiment: Cl31 = 16 fF
    waves = per_computation_currents(xor, [(0, 0), (1, 1), (0, 1), (1, 0)])
    unbalanced_signature = signature_from_traces(waves[:2], waves[2:])
    report = signature_terms(FormalCurrentModel.from_block(xor))
    print(f"Cl31 = 16 fF signature peak: {unbalanced_signature.max_abs():.3e} A "
          f"(formal model blames level {report.dominant_level()})")


if __name__ == "__main__":
    main()
