#!/usr/bin/env python3
"""Aggregate the per-benchmark JSON records into one ``BENCH_summary.json``.

Every benchmark (pytest-style and script-style alike) writes a uniform
record via ``record_benchmark`` — ``benchmarks/results/<name>.json`` with
``wall_time_s``, ``speedup``, the pass/fail ``assertions`` it enforced and
free-form ``metrics``.  This tool folds them into a single summary file so
CI archives one machine-readable artifact per run:

    python tools/aggregate_benchmarks.py [--results benchmarks/results]
                                         [--output BENCH_summary.json]

Exits nonzero when any recorded assertion failed (``--allow-failures``
downgrades that to a warning), so the aggregation step doubles as a
last-ditch gate even when an individual benchmark forgot to assert.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def aggregate(results_dir: Path) -> dict:
    """Fold every ``<name>.json`` record under ``results_dir`` into one
    summary dict (benchmarks sorted by name, gate failures tallied)."""
    benchmarks = {}
    failed = []
    assertions_total = 0
    assertions_skipped = 0
    for path in sorted(results_dir.glob("*.json")):
        try:
            record = json.loads(path.read_text())
        except json.JSONDecodeError as error:
            print(f"warning: skipping unparseable {path}: {error}",
                  file=sys.stderr)
            continue
        if not isinstance(record, dict) or "name" not in record:
            continue  # not a record_benchmark file (e.g. exported frames)
        name = record["name"]
        assertions = record.get("assertions") or {}
        assertions_total += len(assertions)
        # None marks a gate the benchmark did not enforce on this workload
        # (e.g. a smoke run below the gated size): skipped, not failed.
        assertions_skipped += sum(1 for passed in assertions.values()
                                  if passed is None)
        bad = sorted(gate for gate, passed in assertions.items()
                     if passed is False)
        if bad:
            failed.append({"benchmark": name, "gates": bad})
        benchmarks[name] = {
            "wall_time_s": record.get("wall_time_s"),
            "speedup": record.get("speedup"),
            "assertions": assertions,
            "metrics": record.get("metrics") or {},
        }
    return {
        "benchmarks": benchmarks,
        "summary": {
            "benchmark_count": len(benchmarks),
            "assertion_count": assertions_total,
            "assertions_skipped": assertions_skipped,
            "failed": failed,
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--results", default="benchmarks/results",
                        help="directory of record_benchmark JSON files")
    parser.add_argument("--output", default="BENCH_summary.json",
                        help="where to write the merged summary")
    parser.add_argument("--allow-failures", action="store_true",
                        help="exit 0 even when recorded gates failed")
    args = parser.parse_args(argv)

    results_dir = Path(args.results)
    if not results_dir.is_dir():
        print(f"error: no results directory at {results_dir}",
              file=sys.stderr)
        return 2
    summary = aggregate(results_dir)
    output = Path(args.output)
    output.write_text(json.dumps(summary, indent=2, sort_keys=True,
                                 default=float) + "\n")
    counts = summary["summary"]
    print(f"{output}: {counts['benchmark_count']} benchmarks, "
          f"{counts['assertion_count']} recorded gates, "
          f"{len(counts['failed'])} with failures")
    for failure in counts["failed"]:
        print(f"  FAILED {failure['benchmark']}: "
              f"{', '.join(failure['gates'])}", file=sys.stderr)
    if counts["failed"] and not args.allow_failures:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
