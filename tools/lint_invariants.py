#!/usr/bin/env python3
"""Project-specific AST lint: invariants ruff cannot express.

Two checks, both pure ``ast`` (stdlib only, no third-party dependency):

1. **Versioned capacitance writes** — ``Net.routing_cap_ff`` and
   ``Net.dummy_cap_ff`` feed the netlist's ``cap_version`` cache keys; a
   direct write that never bumps the version serves stale capacitances to
   every downstream consumer (extraction caches, incremental criterion,
   DRC).  Outside ``circuits/netlist.py`` (which *implements* the
   versioned API), any function assigning those attributes must also call
   ``touch_caps()`` in the same function — the accepted bulk-write idiom
   of ``pnr/extraction.py`` and ``electrical/capacitance.py`` — or go
   through ``set_routing_cap`` / ``add_dummy_load``.

2. **Gated telemetry spans in hot loops** — inside the hot modules (the
   annealer, the compiled engine, the event simulator), a ``.span(...)``
   call lexically inside a ``for``/``while`` loop must be guarded by a
   ``.enabled`` check (``span(...) if telemetry.enabled else _NO_SPAN``
   or an enclosing ``if telemetry.enabled:``): at thousands of iterations
   even a no-op span's bookkeeping is measurable on the placer gate.

Usage: ``python tools/lint_invariants.py [roots...]`` (default:
``src``).  Prints one ``path:line: message`` per violation and exits
nonzero when any fired.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import List

#: Attributes whose writes must stay behind the versioned netlist API.
CAP_ATTRIBUTES = frozenset({"routing_cap_ff", "dummy_cap_ff"})

#: Files allowed to write the attributes directly: the API implementation.
CAP_ALLOWLIST = ("circuits/netlist.py",)

#: Modules whose inner loops are performance gates: span calls inside
#: their loops must be gated on the collector's ``enabled`` flag.
HOT_MODULES = (
    "pnr/anneal.py",
    "circuits/engine.py",
    "circuits/simulator.py",
)


def _matches(path: Path, suffixes) -> bool:
    text = path.as_posix()
    return any(text.endswith(suffix) for suffix in suffixes)


def _assigned_attributes(node: ast.stmt):
    """Attribute targets of an Assign/AugAssign statement."""
    if isinstance(node, ast.Assign):
        targets = node.targets
    elif isinstance(node, ast.AugAssign):
        targets = [node.target]
    else:
        return
    for target in targets:
        if isinstance(target, ast.Attribute):
            yield target
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                if isinstance(element, ast.Attribute):
                    yield element


def _scope_nodes(scope: ast.AST):
    """Every node of ``scope``, not descending into nested functions."""
    stack = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda, ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _check_cap_writes(tree: ast.Module, path: str) -> List[str]:
    problems: List[str] = []
    scopes = [tree] + [node for node in ast.walk(tree)
                       if isinstance(node, (ast.FunctionDef,
                                            ast.AsyncFunctionDef))]
    for scope in scopes:
        writes = []
        touches = False
        for node in _scope_nodes(scope):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                for attribute in _assigned_attributes(node):
                    if attribute.attr in CAP_ATTRIBUTES:
                        writes.append((node.lineno, attribute.attr))
            elif (isinstance(node, ast.Call)
                  and isinstance(node.func, ast.Attribute)
                  and node.func.attr == "touch_caps"):
                touches = True
        if writes and not touches:
            for lineno, attr in sorted(writes):
                problems.append(
                    f"{path}:{lineno}: direct write to .{attr} without a "
                    "touch_caps() call in the same function; use "
                    "set_routing_cap/add_dummy_load or bump the version "
                    "after the bulk write")
    return problems


class _SpanGateVisitor(ast.NodeVisitor):
    """Flags ``.span(...)`` calls inside loops with no ``.enabled`` gate."""

    def __init__(self, path: str):
        self.path = path
        self.problems: List[str] = []
        self._stack: List[ast.AST] = []

    def visit(self, node: ast.AST) -> None:
        self._stack.append(node)
        try:
            super().visit(node)
        finally:
            self._stack.pop()

    @staticmethod
    def _mentions_enabled(test: ast.AST) -> bool:
        return any(isinstance(sub, ast.Attribute) and sub.attr == "enabled"
                   for sub in ast.walk(test))

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Attribute) and node.func.attr == "span":
            in_loop = False
            gated = False
            # Walk enclosing nodes innermost-first; the gate only counts
            # when it sits inside the loop (a check outside the loop was
            # evaluated once, before the iterations being guarded).
            for ancestor in reversed(self._stack[:-1]):
                if isinstance(ancestor, (ast.If, ast.IfExp)):
                    if self._mentions_enabled(ancestor.test):
                        gated = True
                elif isinstance(ancestor, (ast.For, ast.While)):
                    in_loop = True
                    break
                elif isinstance(ancestor, (ast.FunctionDef,
                                           ast.AsyncFunctionDef)):
                    break
            if in_loop and not gated:
                self.problems.append(
                    f"{self.path}:{node.lineno}: telemetry span created "
                    "inside a hot loop without an .enabled gate; use "
                    "'span(...) if telemetry.enabled else _NO_SPAN'")
        self.generic_visit(node)


def check_source(source: str, path: str) -> List[str]:
    """All invariant violations of one source file (testable entry)."""
    tree = ast.parse(source, filename=path)
    problems: List[str] = []
    posix = Path(path).as_posix()
    if not any(posix.endswith(allowed) for allowed in CAP_ALLOWLIST):
        problems.extend(_check_cap_writes(tree, path))
    if any(posix.endswith(hot) for hot in HOT_MODULES):
        visitor = _SpanGateVisitor(path)
        visitor.visit(tree)
        problems.extend(visitor.problems)
    return sorted(problems)


def check_file(path: Path) -> List[str]:
    return check_source(path.read_text(), str(path))


def main(argv: List[str] = None) -> int:
    roots = [Path(arg) for arg in (argv if argv is not None
                                   else sys.argv[1:])] or [Path("src")]
    problems: List[str] = []
    for root in roots:
        files = sorted(root.rglob("*.py")) if root.is_dir() else [root]
        for path in files:
            problems.extend(check_file(path))
    for problem in problems:
        print(problem)
    if problems:
        print(f"lint_invariants: {len(problems)} violation(s)")
        return 1
    print("lint_invariants: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
