"""Experiment E5 — equations (7)-(12) of the paper.

DPA applied to the formal model and to simulated traces of the dual-rail XOR:
with matched capacitances the bias signal T[j] = A0[j] - A1[j] is null even
though every computation dissipates; a capacitance mismatch between the two
data paths produces the bias predicted by equation (12).  The same known-key
assessment is then run on the asynchronous AES traces for the two
place-and-route flows.
"""

import time

import pytest

from conftest import record_benchmark
from repro.asyncaes import AesArchitecture, AesNetlistGenerator, AesPowerTraceGenerator
from repro.circuits import build_dual_rail_xor
from repro.core import (
    AesAddRoundKeySelection,
    FormalCurrentModel,
    dpa_bias,
    signature_from_traces,
    signature_terms,
    TraceSet,
)
from repro.crypto import random_key
from repro.crypto.keys import PlaintextGenerator
from repro.electrical import per_computation_currents
from repro.pnr import run_flat_flow, run_hierarchical_flow

PAIRS = [(0, 0), (1, 1), (0, 1), (1, 0)]
KEY = random_key(16, seed=77)
TRACES = 150


def _xor_bias(extra_caps):
    block = build_dual_rail_xor("xor_bias")
    for (level, position), cap in extra_caps.items():
        block.set_level_cap(level, position, cap)
    waves = per_computation_currents(block, PAIRS)
    simulated = signature_from_traces(waves[:2], waves[2:])
    formal = signature_terms(FormalCurrentModel.from_block(block))
    return simulated, formal


@pytest.fixture(scope="module")
def aes_bias():
    t0 = time.perf_counter()
    architecture = AesArchitecture(word_width=32, detail=0.12)
    key = KEY
    plaintexts = PlaintextGenerator(seed=13).batch(TRACES)
    results = {}
    for flow, runner in (("flat", run_flat_flow), ("hierarchical", run_hierarchical_flow)):
        netlist = AesNetlistGenerator(architecture, name=f"aes_{flow}").build()
        runner(netlist, seed=9, effort=0.6)
        generator = AesPowerTraceGenerator(netlist, key, architecture=architecture)
        traces = generator.trace_set(plaintexts)
        best_bit = max(range(8), key=lambda j: generator.channel_dissymmetry(
            "addkey0_to_mux", 24 + j))
        selection = AesAddRoundKeySelection(byte_index=0, bit_index=best_bit)
        results[flow] = dpa_bias(traces, selection, key[0]).max_abs()
    results["elapsed"] = time.perf_counter() - t0
    return results


def test_eq12_bias_on_formal_model_and_traces(write_report):
    balanced_sim, balanced_formal = _xor_bias({})
    unbalanced_sim, unbalanced_formal = _xor_bias({(2, 1): 16.0})

    # Equation (12): balanced paths -> null bias; mismatch -> peaks.
    assert balanced_sim.max_abs() == 0.0
    assert balanced_formal.is_balanced
    assert unbalanced_sim.max_abs() > 0.0
    assert not unbalanced_formal.is_balanced
    assert unbalanced_formal.max_term > 0.0

    rows = [
        "Equations (7)-(12) — DPA bias of the dual-rail XOR",
        f"{'configuration':<28s} {'simulated |T| peak':>20s} {'formal max term':>18s}",
        f"{'balanced (Cl = 8 fF)':<28s} {balanced_sim.max_abs():>20.3e} "
        f"{balanced_formal.max_term:>18.3e}",
        f"{'Cl21 = 16 fF':<28s} {unbalanced_sim.max_abs():>20.3e} "
        f"{unbalanced_formal.max_term:>18.3e}",
        "",
        "Paper: the bias is entirely explained by the per-level capacitance",
        "differences of the two data paths (equation (12)).",
    ]
    write_report("eq12_dpa_bias_xor", "\n".join(rows))


def test_eq12_bias_on_aes_traces(aes_bias, write_report):
    """Known-key DPA bias on the asynchronous AES: the flat placement leaks
    more than the hierarchical one."""
    assert aes_bias["flat"] > aes_bias["hierarchical"]
    rows = [
        f"Known-key DPA bias on the asynchronous AES ({TRACES} traces)",
        f"{'flow':<16s} {'|T| peak (A)':>14s}",
        f"{'flat':<16s} {aes_bias['flat']:>14.3e}",
        f"{'hierarchical':<16s} {aes_bias['hierarchical']:>14.3e}",
        f"ratio flat / hierarchical: {aes_bias['flat'] / max(aes_bias['hierarchical'], 1e-30):.1f}",
    ]
    write_report("eq12_dpa_bias_aes", "\n".join(rows))
    record_benchmark(
        "eq12_dpa_bias", wall_time_s=aes_bias["elapsed"],
        assertions={"flat_leaks_more": aes_bias["flat"] > aes_bias["hierarchical"]},
        metrics={"flat_bias_peak": aes_bias["flat"],
                 "hier_bias_peak": aes_bias["hierarchical"]})


def test_eq12_bias_benchmark(benchmark):
    """Timing of one equation-(9) bias computation over 64 synthetic traces."""
    block = build_dual_rail_xor("xor_bench")
    block.set_level_cap(2, 1, 16.0)
    waves = per_computation_currents(block, PAIRS)
    traces = TraceSet()
    for (a, b), wave in zip(PAIRS * 16, waves * 16):
        traces.add(wave, [a ^ b] + [0] * 15)
    selection = AesAddRoundKeySelection(byte_index=0, bit_index=0)

    result = benchmark(lambda: dpa_bias(traces, selection, 0).max_abs())
    assert result > 0
