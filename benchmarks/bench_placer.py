"""Benchmark of the vectorized annealing placer (repro.pnr.anneal).

Three gates, all on the reference reduced asynchronous AES:

* **vectorized speedup** — the numpy batched engine must place the design
  >= 10x faster than the scalar per-move reference loop at the same
  schedule (best-of-N timing on both sides to damp scheduler noise);
* **quality bound** — the vectorized placement's estimated wirelength must
  stay within 1.05x of the scalar reference's at equal move budget;
* **security objective** — placing with ``security_weight > 0`` must enter
  the hardening pipeline with a lower initial max d_A than the HPWL-only
  placement.

Also reports the end-to-end ``flat_pipeline`` wall time (placement +
extraction + criterion) before and after the security weighting.

Run with:  PYTHONPATH=src python benchmarks/bench_placer.py
           [--word-width 8] [--detail 0.1] [--seed 5] [--repeats 3]
           [--min-speedup 10] [--max-quality-ratio 1.05]

Writes its report to ``benchmarks/results/placer.txt``.
"""

import argparse
import time
from pathlib import Path

from conftest import record_benchmark
from repro.asyncaes import AesArchitecture, AesNetlistGenerator
from repro.core import evaluate_netlist_channels
from repro.harden.pipeline import flat_pipeline
from repro.pnr import AnnealingSchedule, FlatPlacer, estimate_routing

RESULTS_DIR = Path(__file__).parent / "results"


def _best_of(repeats, run):
    """(best wall time, last result) over ``repeats`` runs."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = run()
        best = min(best, time.perf_counter() - start)
    return best, result


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--word-width", type=int, default=8)
    parser.add_argument("--detail", type=float, default=0.1)
    parser.add_argument("--seed", type=int, default=5)
    parser.add_argument("--effort", type=float, default=1.0)
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repetitions per placer variant")
    parser.add_argument("--security-weight", type=float, default=2.0)
    parser.add_argument("--min-speedup", type=float, default=10.0,
                        help="required reference/vectorized placement ratio")
    parser.add_argument("--max-quality-ratio", type=float, default=1.05,
                        help="max vectorized/reference wirelength ratio")
    args = parser.parse_args()

    architecture = AesArchitecture(word_width=args.word_width,
                                   detail=args.detail)

    def fresh(name):
        return AesNetlistGenerator(architecture, name=name).build()

    probe = fresh("aes_probe")
    lines = [f"Vectorized placer: AES word_width={args.word_width} "
             f"detail={args.detail} seed={args.seed} effort={args.effort} "
             f"({probe.instance_count} cells)",
             ""]

    # ------------------------------------------------------- speedup gate
    def place(reference):
        """Build outside, time ``place()`` only (the optimizer under test)."""
        netlist = fresh("aes_bench_ref" if reference else "aes_bench_vec")
        schedule = AnnealingSchedule(reference=reference)
        placer = FlatPlacer(seed=args.seed, schedule=schedule,
                            effort=args.effort)
        start = time.perf_counter()
        placement = placer.place(netlist)
        elapsed = time.perf_counter() - start
        return elapsed, estimate_routing(netlist,
                                         placement).total_wirelength_um()

    ref_runs = [place(True) for _ in range(args.repeats)]
    vec_runs = [place(False) for _ in range(args.repeats)]
    ref_time, ref_wl = min(t for t, _ in ref_runs), ref_runs[0][1]
    vec_time, vec_wl = min(t for t, _ in vec_runs), vec_runs[0][1]
    speedup = ref_time / vec_time
    quality = vec_wl / ref_wl
    lines += [
        f"placement (equal move budget, best of {args.repeats}):",
        f"  scalar reference loop: {ref_time:8.3f} s  "
        f"(wirelength {ref_wl:10.0f} um)",
        f"  vectorized engine:     {vec_time:8.3f} s  "
        f"(wirelength {vec_wl:10.0f} um)",
        f"  speedup: {speedup:.1f}x (required >= {args.min_speedup:.0f}x)",
        f"  quality ratio: {quality:.3f} "
        f"(required <= {args.max_quality_ratio:.2f})",
        "",
    ]

    # ------------------------------------------- security objective gate
    def pipeline_run(security_weight):
        netlist = fresh("aes_bench_sec")
        pipeline = flat_pipeline(effort=args.effort,
                                 security_weight=security_weight)
        pipeline.run(netlist, seed=args.seed)
        return evaluate_netlist_channels(netlist)

    plain_time, plain_report = _best_of(1, lambda: pipeline_run(None))
    sec_time, sec_report = _best_of(
        1, lambda: pipeline_run(args.security_weight))
    lines += [
        f"flat_pipeline end-to-end (placement + extraction + criterion):",
        f"  HPWL-only:              {plain_time:8.3f} s  "
        f"max dA {plain_report.max_dissymmetry:8.4f}  "
        f"mean dA {plain_report.mean_dissymmetry:8.4f}",
        f"  security_weight={args.security_weight:g}:    "
        f"{sec_time:8.3f} s  "
        f"max dA {sec_report.max_dissymmetry:8.4f}  "
        f"mean dA {sec_report.mean_dissymmetry:8.4f}",
        "",
    ]

    report = "\n".join(lines)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "placer.txt").write_text(report + "\n")
    print(report)

    record_benchmark(
        "placer", wall_time_s=ref_time + vec_time, speedup=speedup,
        assertions={
            "speedup_gate": speedup >= args.min_speedup,
            "quality_gate": quality <= args.max_quality_ratio,
            "security_weight_lowers_dA":
                sec_report.max_dissymmetry < plain_report.max_dissymmetry,
        },
        metrics={"quality_ratio": quality,
                 "plain_max_dA": plain_report.max_dissymmetry,
                 "secure_max_dA": sec_report.max_dissymmetry})
    assert speedup >= args.min_speedup, (
        f"vectorized placer speedup {speedup:.1f}x below the "
        f"{args.min_speedup:.0f}x gate")
    assert quality <= args.max_quality_ratio, (
        f"vectorized wirelength ratio {quality:.3f} above the "
        f"{args.max_quality_ratio:.2f} quality bound")
    assert sec_report.max_dissymmetry < plain_report.max_dissymmetry, (
        f"security-weighted placement did not lower the initial max d_A "
        f"({sec_report.max_dissymmetry:.4f} vs "
        f"{plain_report.max_dissymmetry:.4f})")
    print(f"\nOK: {speedup:.1f}x vectorized placement, quality ratio "
          f"{quality:.3f}, security weighting lowers initial max dA "
          f"{plain_report.max_dissymmetry:.3f} -> "
          f"{sec_report.max_dissymmetry:.3f}.")


if __name__ == "__main__":
    main()
