"""Benchmark of the hardening pass pipeline and incremental extraction.

Two gates, both on the reference reduced asynchronous AES:

* **incremental re-extraction** — a repair pass that moves one cell must
  re-measure only the nets that cell pins; the per-update cost is gated at
  >= 10x cheaper than a full routing-estimate + extraction sweep of the
  design (the loop that makes ``repair-until(d_A <= bound)`` affordable);
* **repair-loop closure** — the hardening pipeline (flat base flow plus the
  fence-resize / reposition / dummy-load repair loop) must drive the maximum
  channel dissymmetry below the requested bound, with at least a 5x
  reduction over the flat flow's criterion.

Run with:  PYTHONPATH=src python benchmarks/bench_hardening.py
           [--word-width 8] [--detail 0.1] [--effort 0.3] [--bound 0.02]
           [--rounds 25] [--min-speedup 10]

Writes its report to ``benchmarks/results/hardening.txt``.
"""

import argparse
import time
from pathlib import Path

from conftest import record_benchmark
from repro.asyncaes import AesArchitecture, AesNetlistGenerator
from repro.core import evaluate_netlist_channels
from repro.harden import harden_design
from repro.pnr import (
    IncrementalExtractor,
    estimate_routing,
    extract_capacitances,
    run_flat_flow,
)

RESULTS_DIR = Path(__file__).parent / "results"


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--word-width", type=int, default=8)
    parser.add_argument("--detail", type=float, default=0.1)
    parser.add_argument("--effort", type=float, default=0.3)
    parser.add_argument("--seed", type=int, default=5)
    parser.add_argument("--bound", type=float, default=0.02)
    parser.add_argument("--rounds", type=int, default=25,
                        help="timing repetitions per extraction variant")
    parser.add_argument("--min-speedup", type=float, default=10.0,
                        help="required full/incremental extraction ratio")
    parser.add_argument("--min-reduction", type=float, default=5.0,
                        help="required flat/hardened criterion ratio")
    args = parser.parse_args()

    architecture = AesArchitecture(word_width=args.word_width,
                                   detail=args.detail)

    def fresh(name):
        return AesNetlistGenerator(architecture, name=name).build()

    lines = [f"Hardening pipeline: AES word_width={args.word_width} "
             f"detail={args.detail} effort={args.effort} seed={args.seed}",
             ""]

    # ------------------------------------------- incremental extraction gate
    netlist = fresh("aes_bench_inc")
    design = run_flat_flow(netlist, seed=args.seed, effort=args.effort)
    extractor = IncrementalExtractor(netlist, design.placement)
    cell = sorted(design.placement.cells)[0]

    start = time.perf_counter()
    for _ in range(args.rounds):
        extractor.update_cells([cell])
    incremental_time = (time.perf_counter() - start) / args.rounds

    start = time.perf_counter()
    for _ in range(args.rounds):
        estimate_routing(netlist, design.placement)
        extract_capacitances(netlist, design.placement)
    full_time = (time.perf_counter() - start) / args.rounds

    speedup = full_time / incremental_time
    per_update = extractor.nets_reextracted / max(extractor.incremental_updates, 1)
    lines += [
        f"extraction: {netlist.net_count} nets, "
        f"{len(design.placement)} cells",
        f"  full re-extraction:        {full_time * 1e3:9.3f} ms / pass",
        f"  incremental (1-cell move): {incremental_time * 1e3:9.3f} ms / pass "
        f"({per_update:.0f} nets re-measured)",
        f"  speedup: {speedup:.1f}x (required >= {args.min_speedup:.0f}x)",
        "",
    ]

    # -------------------------------------------------- repair-loop closure
    flat_netlist = fresh("aes_bench_flat")
    run_flat_flow(flat_netlist, seed=args.seed, effort=args.effort)
    flat_max = evaluate_netlist_channels(flat_netlist).max_dissymmetry

    hardened = fresh("aes_bench_hard")
    start = time.perf_counter()
    result = harden_design(hardened, base="flat", bound=args.bound,
                           seed=args.seed, effort=args.effort)
    harden_time = time.perf_counter() - start
    reduction = flat_max / max(result.max_dissymmetry, 1e-12)
    lines += [
        f"repair loop: bound {args.bound:g}, "
        f"{result.repair_iterations} iteration(s), {harden_time:.2f} s",
        f"  flat max dA:     {flat_max:9.4f}",
        f"  hardened max dA: {result.max_dissymmetry:9.4f} "
        f"({'PASS' if result.passed else 'FAIL'})",
        f"  reduction: {reduction:.1f}x (required >= {args.min_reduction:.0f}x)",
        f"  dummy load added: {result.dummy_cap_added_ff:.1f} fF, "
        f"nets re-extracted incrementally: {result.nets_reextracted}",
        "",
        result.provenance_table(),
    ]

    report = "\n".join(lines)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "hardening.txt").write_text(report + "\n")
    print(report)

    record_benchmark(
        "hardening", wall_time_s=harden_time, speedup=speedup,
        assertions={
            "incremental_speedup": speedup >= args.min_speedup,
            "repair_loop_converged": result.passed,
            "criterion_reduction": reduction >= args.min_reduction,
        },
        metrics={"criterion_reduction": reduction,
                 "repair_iterations": result.repair_iterations,
                 "dummy_cap_added_ff": result.dummy_cap_added_ff})
    assert speedup >= args.min_speedup, (
        f"incremental extraction speedup {speedup:.1f}x below the "
        f"{args.min_speedup:.0f}x gate")
    assert result.passed, (
        f"repair loop left max dA at {result.max_dissymmetry:.4f} "
        f"(> bound {args.bound:g})")
    assert reduction >= args.min_reduction, (
        f"criterion reduction {reduction:.1f}x below the "
        f"{args.min_reduction:.0f}x gate")
    print(f"\nOK: {speedup:.1f}x incremental extraction, "
          f"{reduction:.1f}x criterion reduction, bound met.")


if __name__ == "__main__":
    main()
