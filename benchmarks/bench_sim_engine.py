"""Throughput benchmark of the compiled/levelized simulation engine.

Measures, on the reference XOR-block stimulus set (a word-wide dual-rail XOR
bank driven with random rail vectors):

* settled-state queries — the scalar per-vector event loop
  (``ReferenceSimulator`` + ``settle``) vs the levelized vectorized
  ``simulate_batch`` sweep (stimuli/second);
* the event loop itself — the dict-backed scalar loop vs the compiled
  table-driven :class:`Simulator` on the same stimuli.

Run with:  PYTHONPATH=src python benchmarks/bench_sim_engine.py
           [--width 4] [--stimuli 256]

The script asserts the >= 10x speedup of the batched engine over the scalar
loop at the full workload size, checks value-identity on sampled rows, and
writes its report to ``benchmarks/results/sim_engine.txt``.
"""

import argparse
import random
import time
from pathlib import Path

from conftest import record_benchmark
from repro.circuits import (
    Logic,
    ReferenceSimulator,
    Simulator,
    build_xor_bank,
    simulate_batch,
)

RESULTS_DIR = Path(__file__).parent / "results"


def _stimulus_set(bank, count: int, seed: int):
    rails = [rail for block in bank.bits
             for rail in (*block.inputs[0].rails, *block.inputs[1].rails)]
    rng = random.Random(seed)
    return [{rail: rng.randint(0, 1) for rail in rails} for _ in range(count)]


def _settle_scalar(sim_class, netlist, stimulus):
    sim = sim_class(netlist)
    for net, value in stimulus.items():
        sim.drive_input(net, Logic(value))
    sim.settle()
    return sim


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--width", type=int, default=4,
                        help="XOR bank width (bits)")
    parser.add_argument("--stimuli", type=int, default=256)
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args()

    bank = build_xor_bank(args.width, "bench")
    netlist = bank.netlist
    stimuli = _stimulus_set(bank, args.stimuli, args.seed)
    lines = [f"Simulation engine: {args.width}-bit XOR bank "
             f"({netlist.instance_count} gates), {args.stimuli} stimuli", ""]

    # ------------------------------------------------- scalar event loop
    t0 = time.perf_counter()
    scalar_sims = [_settle_scalar(ReferenceSimulator, netlist, stimulus)
                   for stimulus in stimuli]
    scalar_time = time.perf_counter() - t0

    # ----------------------------------------------- compiled event loop
    t0 = time.perf_counter()
    compiled_sims = [_settle_scalar(Simulator, netlist, stimulus)
                     for stimulus in stimuli]
    compiled_time = time.perf_counter() - t0

    # -------------------------------------------------- levelized batch
    t0 = time.perf_counter()
    batch = simulate_batch(netlist, stimuli)
    batch_time = time.perf_counter() - t0

    # Value-identity spot checks against both event loops.
    step = max(1, args.stimuli // 16)
    for index in range(0, args.stimuli, step):
        row = batch.row(index)
        for net in netlist.net_names():
            assert row[net] is scalar_sims[index].value(net), \
                f"batch diverged from the scalar loop on {net!r} (row {index})"
            assert row[net] is compiled_sims[index].value(net), \
                f"batch diverged from the event engine on {net!r} (row {index})"

    batch_speedup = scalar_time / batch_time
    event_speedup = scalar_time / compiled_time
    lines += [
        f"scalar event loop : {scalar_time:8.3f} s "
        f"({args.stimuli / scalar_time:10.1f} stimuli/s)",
        f"compiled event loop: {compiled_time:7.3f} s "
        f"({args.stimuli / compiled_time:10.1f} stimuli/s)   x{event_speedup:.1f}",
        f"levelized batch   : {batch_time:8.3f} s "
        f"({args.stimuli / batch_time:10.1f} stimuli/s)   x{batch_speedup:.1f}",
        "",
        f"batched engine vs scalar loop: x{batch_speedup:.1f}",
    ]

    report = "\n".join(lines)
    print(report)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "sim_engine.txt").write_text(report + "\n")

    record_benchmark(
        "sim_engine", wall_time_s=scalar_time + compiled_time + batch_time,
        speedup=batch_speedup,
        assertions={"values_identical": True,
                    "speedup_10x": (batch_speedup >= 10.0
                                    if args.stimuli >= 256 else None)},
        metrics={"scalar_s": scalar_time, "compiled_s": compiled_time,
                 "batch_s": batch_time, "event_speedup": event_speedup})
    if args.stimuli >= 256:
        assert batch_speedup >= 10.0, \
            f"batched engine only x{batch_speedup:.1f} faster (need >= 10x)"
        print("OK: batched simulation engine is >= 10x faster than the "
              "scalar loop")


if __name__ == "__main__":
    main()
