"""Bounded-memory smoke test: a 50k-trace streaming assessment under an RSS budget.

Runs a full streaming campaign — non-specific TVLA, specific t-test, SNR and
a 256-guess streaming CPA — over 50 000 synthetic traces of 1024 samples in
``chunk_size=2048`` blocks, and asserts with ``resource.getrusage`` that the
process peak RSS stays under a fixed budget.

The point of the assertion: the full trace matrix would be
``50_000 x 1024 x 8 B = 410 MB`` — materializing it anywhere in the pipeline
blows the budget immediately, so staying under it *proves* the campaign
never holds more than one chunk (16 MB) plus the accumulators.

Run with:  PYTHONPATH=src python benchmarks/bench_streaming_rss.py
           [--traces 50000] [--chunk 2048] [--budget-mb 256]

The report lands in ``benchmarks/results/streaming_rss.txt``.
"""

import argparse
import resource
import sys
import time
from pathlib import Path

import numpy as np

from conftest import record_benchmark
from repro.core import AesSboxSelection, AttackCampaign, TraceSet
from repro.crypto.aes_tables import SBOX

RESULTS_DIR = Path(__file__).parent / "results"

_SBOX = np.asarray(SBOX, dtype=np.int64)
_POPCOUNT = np.asarray([bin(v).count("1") for v in range(256)], dtype=np.int64)
KEY = list(range(16))
SAMPLES = 1024


def _peak_rss_mb() -> float:
    """Peak resident set size of this process, in MiB."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB, macOS bytes.
    if sys.platform == "darwin":
        return peak / (1024 * 1024)
    return peak / 1024


def _synthetic_source(plaintexts, noise):
    """Row-deterministic leaky traces (1024 samples, one HW leak)."""
    plaintexts = [list(p) for p in plaintexts]
    points = np.asarray(plaintexts, dtype=np.int64)
    matrix = np.zeros((len(plaintexts), SAMPLES))
    matrix[:, 100] += 1e-3 * points[:, 1]
    matrix[:, 700] += 0.1 * _POPCOUNT[_SBOX[points[:, 0] ^ KEY[0]]]
    if noise is not None:
        matrix = noise.apply_matrix(matrix, 1e-9, 0.0)
    return TraceSet.from_matrix(matrix, plaintexts, 1e-9)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--traces", type=int, default=50000)
    parser.add_argument("--chunk", type=int, default=2048)
    parser.add_argument("--budget-mb", type=float, default=256.0)
    args = parser.parse_args()

    full_matrix_mb = 2 * args.traces * SAMPLES * 8 / (1024 * 1024)
    chunk_mb = args.chunk * SAMPLES * 8 / (1024 * 1024)
    baseline_mb = _peak_rss_mb()

    selection = AesSboxSelection(byte_index=0, bit_index=3)
    campaign = AttackCampaign(KEY)
    campaign.add_design("synthetic", trace_source=_synthetic_source)
    campaign.add_selection(selection)
    campaign.add_attack("cpa", model="hw")
    campaign.add_assessment("tvla")
    campaign.add_assessment("tvla-specific", selection=selection)
    campaign.add_assessment("snr", selection=selection, classes="hw")

    start = time.perf_counter()
    result = campaign.run(args.traces, seed=7, streaming=True,
                          chunk_size=args.chunk, compute_disclosure=False)
    elapsed = time.perf_counter() - start
    peak_mb = _peak_rss_mb()

    cpa_row = result.rows[0]
    tvla_row = result.assessment_row("synthetic", assessment="tvla")
    lines = [
        f"streaming assessment RSS ({args.traces} traces x {SAMPLES} samples, "
        f"chunk={args.chunk})",
        f"  two full passes would materialize : {full_matrix_mb:8.1f} MiB",
        f"  one chunk                         : {chunk_mb:8.1f} MiB",
        f"  baseline RSS (imports)            : {baseline_mb:8.1f} MiB",
        f"  peak RSS after campaign           : {peak_mb:8.1f} MiB "
        f"(budget {args.budget_mb:.0f} MiB)",
        f"  wall clock                        : {elapsed:8.1f} s "
        f"({args.traces * 2 / elapsed / 1e3:.1f} ktraces/s incl. generation)",
        f"  CPA best guess {cpa_row.best_guess:#04x} "
        f"(true {KEY[0]:#04x}, rank {cpa_row.rank_of_correct}); "
        f"TVLA max |t| = {tvla_row.peak:.1f}",
    ]
    report = "\n".join(lines)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "streaming_rss.txt").write_text(report + "\n")
    print(report)

    record_benchmark(
        "streaming_rss", wall_time_s=elapsed,
        assertions={"rss_under_budget": peak_mb < args.budget_mb,
                    "cpa_ranks_key_first": cpa_row.rank_of_correct == 1,
                    "tvla_flags_leak": tvla_row.flagged},
        metrics={"peak_rss_mb": peak_mb, "budget_mb": args.budget_mb,
                 "full_matrix_mb": full_matrix_mb,
                 "ktraces_per_s": args.traces * 2 / elapsed / 1e3})
    assert peak_mb < args.budget_mb, (
        f"peak RSS {peak_mb:.1f} MiB exceeds the {args.budget_mb:.0f} MiB "
        "budget — the streaming pipeline materialized more than one chunk"
    )
    assert cpa_row.rank_of_correct == 1, "streaming CPA failed to rank the key first"
    assert tvla_row.flagged, "streaming TVLA failed to flag the planted leak"
    print(f"\nPASS: peak RSS {peak_mb:.1f} MiB < {args.budget_mb:.0f} MiB "
          f"budget (full matrices would need {full_matrix_mb:.0f} MiB)")


if __name__ == "__main__":
    main()
