"""Experiment E3 — Table 2 of the paper.

Most critical channels (highest dissymmetry criterion) of the asynchronous AES
for the two place-and-route flows:

* AES_v2 — flat reference flow: the paper reports channels with a criterion of
  up to 1.25 and observes that the critical channels change from one run to
  the next;
* AES_v1 — hierarchical constrained flow: no channel above 0.13, at the cost
  of about 20 % more core area.

Absolute criterion values depend on the (synthetic) placement engine; the
reproduced claims are the ordering (flat much worse than hierarchical, with
roughly an order of magnitude between the two), the run-to-run movement of the
flat critical channels, and the area overhead of the hierarchical flow.
"""

import time

import pytest

from conftest import record_benchmark
from repro.asyncaes import AesArchitecture, AesNetlistGenerator
from repro.core import compare_reports, evaluate_netlist_channels
from repro.pnr import compare_flows, run_flat_flow, run_hierarchical_flow

#: Full-width (32-bit) architecture with reduced filler so the pure-Python
#: placer stays fast; every block and channel of Fig. 8 is present.
ARCHITECTURE = AesArchitecture(word_width=32, detail=0.15)
EFFORT = 0.8


def _place_and_evaluate(flow, seed):
    netlist = AesNetlistGenerator(ARCHITECTURE, name=f"aes_{flow}_{seed}").build()
    if flow == "flat":
        design = run_flat_flow(netlist, seed=seed, effort=EFFORT,
                               design_name=f"AES_v2_flat_seed{seed}")
    else:
        design = run_hierarchical_flow(netlist, seed=seed, effort=EFFORT,
                                       design_name=f"AES_v1_hier_seed{seed}")
    report = evaluate_netlist_channels(netlist, design_name=design.name)
    return design, report


@pytest.fixture(scope="module")
def table2_designs():
    t0 = time.perf_counter()
    flat_design, flat_report = _place_and_evaluate("flat", seed=1)
    hier_design, hier_report = _place_and_evaluate("hier", seed=1)
    return (flat_design, flat_report, hier_design, hier_report,
            time.perf_counter() - t0)


def test_table2_criterion_comparison(table2_designs, write_report):
    flat_design, flat_report, hier_design, hier_report, elapsed = table2_designs

    # Table 2 headline: the hierarchical flow drastically reduces the worst
    # and the average channel dissymmetry.
    assert hier_report.max_dissymmetry < 0.5 * flat_report.max_dissymmetry
    assert hier_report.mean_dissymmetry < 0.5 * flat_report.mean_dissymmetry

    # The hierarchical flow costs silicon area (paper: about +20 %).
    comparison = compare_flows(flat_design, hier_design)
    assert comparison["area_overhead"] > 0.0

    improvement = flat_report.max_dissymmetry / max(hier_report.max_dissymmetry, 1e-9)
    rows = [
        "Table 2 — most critical channels, AES_v1 (hierarchical) vs AES_v2 (flat)",
        "",
        compare_reports(flat_report, hier_report, count=4),
        "",
        f"criterion improvement (flat max / hier max): x{improvement:.1f} "
        f"(paper: 1.25 / 0.13 = x9.6)",
        f"area overhead of the hierarchical flow: {comparison['area_overhead']:+.1%} "
        f"(paper: about +20 %)",
        f"flat die area  : {comparison['flat_die_area_um2']:.0f} um2",
        f"hier die area  : {comparison['hier_die_area_um2']:.0f} um2",
    ]
    write_report("table2_criterion", "\n".join(rows))
    record_benchmark(
        "table2_criterion", wall_time_s=elapsed,
        assertions={
            "hier_halves_max_dA":
                hier_report.max_dissymmetry < 0.5 * flat_report.max_dissymmetry,
            "hier_costs_area": comparison["area_overhead"] > 0.0,
        },
        metrics={"criterion_improvement": improvement,
                 "area_overhead": comparison["area_overhead"]})


def test_table2_flat_critical_channels_move_between_runs(write_report):
    """The paper: "the most sensitive channels are never the same from one
    place and route to another" (flat flow)."""
    _, report_a = _place_and_evaluate("flat", seed=11)
    _, report_b = _place_and_evaluate("flat", seed=12)
    worst_a = [c.channel for c in report_a.worst(5)]
    worst_b = [c.channel for c in report_b.worst(5)]
    assert worst_a != worst_b

    rows = [
        "Flat flow, two different place-and-route runs — worst channels move:",
        f"seed 11: {worst_a}",
        f"seed 12: {worst_b}",
    ]
    write_report("table2_run_to_run_variation", "\n".join(rows))


def test_table2_flow_benchmark(benchmark):
    """Timing of one complete flat place-and-route + criterion evaluation."""

    def run_once():
        _, report = _place_and_evaluate("flat", seed=3)
        return report.max_dissymmetry

    result = benchmark.pedantic(run_once, rounds=1, iterations=1)
    assert result > 0
