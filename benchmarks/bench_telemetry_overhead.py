"""Telemetry overhead gate — recording must stay within 5 % of disabled.

Runs the same reference attack campaign (a ``flat`` and a ``hier``
synthetic design x DPA/CPA x two noise levels, plus a TVLA assessment)
twice: once under the default no-op collector and once recording into a
:class:`repro.obs.Telemetry`.  Three gates:

* overhead — the telemetry-enabled run costs at most ``--max-overhead``
  (default 5 %) over the disabled run, best of ``--repeats`` per leg;
* identity — the campaign tables of the two runs are identical, so
  recording never perturbs results;
* coverage — a sharded (``--workers``) store-backed run produces a span
  tree covering the generation, attack, assessment and store phases with
  per-shard attribution, and persists the ``telemetry`` table next to the
  shard manifests.

Writes ``benchmarks/results/telemetry_runreport.txt`` (the rendered text
tree), ``telemetry_campaign.jsonl`` (the span event log) and the uniform
JSON record.  Runs in CI.
"""

import argparse
import shutil
import tempfile
import time
from pathlib import Path

import numpy as np

from conftest import record_benchmark
from repro.core import AesSboxSelection, AttackCampaign, TraceSet
from repro.crypto.aes_tables import SBOX
from repro.electrical import GaussianNoise
from repro.obs import RunReport, Telemetry, write_jsonl
from repro.store import open_store

RESULTS_DIR = Path(__file__).parent / "results"

POPCOUNT = np.asarray([bin(value).count("1") for value in range(256)])
SECRET = 0x3C

#: Span names one reference campaign must cover (the acceptance list).
REQUIRED_SPANS = (
    "campaign", "campaign.scenario", "campaign.generate",
    "campaign.attack", "campaign.assess",
    "store.write_shard", "store.merge", "store.finalize",
)


def _source(scale):
    """A row-deterministic leaky trace source (sample 7 leaks the HW of
    the first-round S-box output); ``scale`` sets how hard it leaks."""

    def source(plaintexts, noise):
        plaintexts = [list(p) for p in plaintexts]
        rng = np.random.default_rng(17)
        matrix = rng.normal(0.0, 0.4, (len(plaintexts), 24))
        values = np.asarray([SBOX[p[0] ^ SECRET] for p in plaintexts])
        matrix[:, 7] += scale * POPCOUNT[values]
        if noise is not None:
            matrix = noise.apply_matrix(matrix, 1e-9, 0.0)
        return TraceSet.from_matrix(matrix, plaintexts, 1e-9)

    return source


def _campaign():
    campaign = AttackCampaign(mtd_start=50, mtd_step=50)
    campaign.add_design("flat", trace_source=_source(0.30))
    campaign.add_design("hier", trace_source=_source(0.03))
    campaign.add_selection(AesSboxSelection(byte_index=0, bit_index=0),
                           correct_guess=SECRET)
    campaign.add_attack("dpa")
    campaign.add_attack("cpa", model="hw")
    campaign.add_noise("noiseless")
    campaign.add_noise("gaussian", lambda: GaussianNoise(0.1, seed=13))
    campaign.add_assessment("tvla")
    return campaign


def _best_of(repeats, run):
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = run()
        best = min(best, time.perf_counter() - start)
    return best, result


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--traces", type=int, default=400)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--max-overhead", type=float, default=0.05)
    args = parser.parse_args()

    # ------------------------------------------------------ overhead gate
    # Serial legs so the fork pool's scheduling jitter does not drown the
    # microseconds under test.
    disabled_s, disabled = _best_of(
        args.repeats, lambda: _campaign().run(args.traces, seed=3))
    enabled_s, enabled = _best_of(
        args.repeats, lambda: _campaign().run(args.traces, seed=3,
                                              telemetry=Telemetry()))
    overhead = enabled_s / disabled_s - 1.0
    identical = enabled.table() == disabled.table()

    # -------------------------------------------- sharded coverage run
    workdir = Path(tempfile.mkdtemp(prefix="bench_obs_"))
    try:
        telemetry = Telemetry()
        sharded = _campaign().run(args.traces, seed=3, workers=args.workers,
                                  telemetry=telemetry,
                                  store=workdir / "campaign")
        root = telemetry.snapshot()
        missing = [name for name in REQUIRED_SPANS if not root.find(name)]
        shards = sorted({node.attrs.get("shard")
                         for node in root.find("campaign.scenario")})
        stored_rows = open_store(workdir / "campaign").read_merged("telemetry")
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    sharded_identical = sharded.table() == disabled.table()
    report = RunReport(root)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "telemetry_runreport.txt").write_text(
        report.render() + "\n")
    write_jsonl(root, RESULTS_DIR / "telemetry_campaign.jsonl")

    scenarios = len(root.find("campaign.scenario"))
    lines = [
        f"Telemetry overhead ({args.traces} traces, {scenarios} scenarios, "
        f"best of {args.repeats}):",
        f"  disabled run : {disabled_s:8.3f} s",
        f"  recording run: {enabled_s:8.3f} s",
        f"  overhead     : {overhead:+8.2%}  "
        f"(bound {args.max_overhead:.0%})",
        f"  tables identical (serial + {args.workers}-worker store run): "
        f"{'yes' if identical and sharded_identical else 'NO'}",
        f"  span coverage: {len(list(root.walk()))} spans, shards={shards}, "
        f"{len(stored_rows)} telemetry rows persisted",
    ]
    print("\n".join(lines))

    record_benchmark(
        "telemetry_overhead", wall_time_s=enabled_s,
        assertions={
            "overhead_bound": overhead <= args.max_overhead,
            "tables_identical": identical and sharded_identical,
            "span_coverage": not missing,
            "shard_attribution": shards == list(range(scenarios)),
            "telemetry_table_persisted": len(stored_rows) > 0,
        },
        metrics={"overhead": overhead, "disabled_s": disabled_s,
                 "enabled_s": enabled_s,
                 "span_count": len(list(root.walk()))})

    assert identical and sharded_identical, \
        "telemetry-enabled campaign diverged from the disabled run"
    assert not missing, f"span tree is missing {missing}"
    # Shards are attributed by scenario index (the sharding unit), so a
    # sharded run tags every scenario 0..N-1 regardless of pool width.
    assert shards == list(range(scenarios)), \
        f"expected shard attribution {list(range(scenarios))}, got {shards}"
    assert len(stored_rows) > 0, "no telemetry rows persisted in the store"
    assert overhead <= args.max_overhead, (
        f"telemetry overhead {overhead:+.2%} above the "
        f"{args.max_overhead:.0%} bound")
    print(f"\nOK: telemetry costs {overhead:+.2%} "
          f"(bound {args.max_overhead:.0%}), identical tables, "
          "full span coverage with per-shard attribution.")


if __name__ == "__main__":
    main()
