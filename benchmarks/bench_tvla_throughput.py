"""Throughput benchmark of the streaming TVLA t-test engine.

Measures, on a synthetic fixed-vs-random acquisition:

* **in-memory pass** — the whole ``(n_traces, n_samples)`` matrix folded
  into the Welch t-test accumulators in one update;
* **chunked pass** — the same matrix consumed as ``chunk_size`` blocks
  (the bounded-memory streaming path of `repro.assess`); the benchmark
  asserts the chunked pass stays within **1.5×** of the in-memory wall
  clock — the price of bounded memory must be a small constant factor;
* **sharded merge** — the matrix split over N simulated shards whose
  accumulators merge; the merged t-statistic must match the one-pass result
  (atol 1e-9), and the merge itself must be negligible next to a pass.

Run with:  PYTHONPATH=src python benchmarks/bench_tvla_throughput.py
           [--traces 20000] [--samples 512] [--chunk 2048]

The report lands in ``benchmarks/results/tvla_throughput.txt``.
"""

import argparse
import time
from pathlib import Path

import numpy as np

from conftest import record_benchmark
from repro.assess import StreamingTTest

RESULTS_DIR = Path(__file__).parent / "results"

#: The wall-clock bound: chunked streaming within this factor of in-memory.
CHUNKED_SLOWDOWN_BOUND = 1.5


def _acquisition(traces: int, samples: int, seed: int = 0):
    """A synthetic interleaved fixed-vs-random acquisition with one leak."""
    rng = np.random.default_rng(seed)
    matrix = rng.normal(0.0, 1.0, (traces, samples))
    labels = np.arange(traces, dtype=np.int64) % 2
    matrix[labels == 0, samples // 2] += 0.05  # the planted fixed-class bias
    return matrix, labels


def _best_of(repeats, run):
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        result = run()
        times.append(time.perf_counter() - start)
    return min(times), result


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--traces", type=int, default=20000)
    parser.add_argument("--samples", type=int, default=512)
    parser.add_argument("--chunk", type=int, default=2048)
    parser.add_argument("--shards", type=int, default=8)
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args()

    matrix, labels = _acquisition(args.traces, args.samples)

    def in_memory():
        return StreamingTTest().update(matrix, labels).t_statistic()

    def chunked():
        ttest = StreamingTTest()
        for start in range(0, args.traces, args.chunk):
            ttest.update(matrix[start:start + args.chunk],
                         labels[start:start + args.chunk])
        return ttest.t_statistic()

    memory_s, reference = _best_of(args.repeats, in_memory)
    chunked_s, streamed = _best_of(args.repeats, chunked)

    assert np.allclose(streamed, reference, atol=1e-9), \
        "chunked t-statistic diverged from the in-memory pass"

    # Sharded merge: accumulate per shard, then reduce.
    bounds = np.linspace(0, args.traces, args.shards + 1, dtype=int)
    shard_states = []
    shard_s = time.perf_counter()
    for lo, hi in zip(bounds, bounds[1:]):
        shard_states.append(StreamingTTest().update(matrix[lo:hi],
                                                    labels[lo:hi]))
    shard_s = time.perf_counter() - shard_s
    merge_s = time.perf_counter()
    merged = shard_states[0]
    for shard in shard_states[1:]:
        merged.merge(shard)
    merge_s = time.perf_counter() - merge_s
    assert np.allclose(merged.t_statistic(), reference, atol=1e-9), \
        "merged shard t-statistic diverged from the one-pass result"

    slowdown = chunked_s / memory_s
    rate = args.traces / chunked_s
    lines = [
        f"TVLA t-test throughput ({args.traces} traces x {args.samples} samples)",
        f"  in-memory pass : {memory_s * 1e3:8.2f} ms",
        f"  chunked pass   : {chunked_s * 1e3:8.2f} ms "
        f"(chunk={args.chunk}, {rate / 1e6:.2f} Mtraces/s)",
        f"  slowdown       : {slowdown:8.2f}x  (bound {CHUNKED_SLOWDOWN_BOUND}x)",
        f"  {args.shards} shards     : {shard_s * 1e3:8.2f} ms accumulate "
        f"+ {merge_s * 1e3:.3f} ms merge (exact)",
        f"  max |t|        : {np.max(np.abs(reference)):8.2f}",
    ]
    report = "\n".join(lines)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "tvla_throughput.txt").write_text(report + "\n")
    print(report)

    record_benchmark(
        "tvla_throughput", wall_time_s=chunked_s,
        speedup=memory_s / chunked_s,
        assertions={"chunked_matches_in_memory": True,
                    "shard_merge_exact": True,
                    "slowdown_bound": slowdown <= CHUNKED_SLOWDOWN_BOUND},
        metrics={"in_memory_s": memory_s, "chunked_s": chunked_s,
                 "traces_per_s": rate})
    assert slowdown <= CHUNKED_SLOWDOWN_BOUND, (
        f"chunked t-test pass is {slowdown:.2f}x the in-memory pass "
        f"(bound {CHUNKED_SLOWDOWN_BOUND}x)"
    )
    print(f"\nPASS: chunked streaming within {CHUNKED_SLOWDOWN_BOUND}x of "
          "the in-memory pass, shard merge exact")


if __name__ == "__main__":
    main()
