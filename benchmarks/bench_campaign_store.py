"""Benchmark of the columnar campaign store (repro.store).

Three gates, on a synthetic leaky-source campaign grid:

* **spill overhead** — running a >= 64-scenario campaign with ``store=``
  must cost <= ``--max-overhead`` x the in-memory run (the store adds one
  npz write + one manifest rewrite per scenario, nothing per trace);
* **resume identity** — a second run over the same store must skip every
  scenario (zero trace generations) and still return the byte-identical
  table; a run resumed after a simulated crash at the grid midpoint must
  match the uninterrupted run byte for byte as well;
* **query latency** — on a >= 10k-row frame, a filter + group-by MTD
  percentile pass and a verdict pivot must each finish within
  ``--max-query-ms``.

Run with:  PYTHONPATH=src python benchmarks/bench_campaign_store.py
           [--designs 16] [--noises 4] [--traces 200] [--query-rows 10000]
           [--max-overhead 1.5] [--max-query-ms 500]

Writes its report to ``benchmarks/results/campaign_store.txt``.
"""

import argparse
import shutil
import tempfile
import time
from pathlib import Path

import numpy as np

from conftest import record_benchmark
from repro.core import AesSboxSelection, AttackCampaign, TraceSet
from repro.core.flow import CampaignRow
from repro.crypto.aes_tables import SBOX
from repro.electrical import GaussianNoise
from repro.store import (
    CampaignFrame,
    load_campaign_result,
    mtd_percentiles,
    open_store,
    verdict_pivot,
)

RESULTS_DIR = Path(__file__).parent / "results"

KEY = list(range(16))
_SBOX = np.asarray(SBOX, dtype=np.int64)
_POP = np.asarray([bin(v).count("1") for v in range(256)], dtype=np.int64)


def _leaky_source(plaintexts, noise):
    plaintexts = [list(p) for p in plaintexts]
    points = np.asarray(plaintexts, dtype=np.int64)
    matrix = np.zeros((len(plaintexts), 24))
    matrix[:, 7] += 0.3 * _POP[_SBOX[points[:, 0] ^ KEY[0]]]
    if noise is not None:
        matrix = noise.apply_matrix(matrix, 1e-9, 0.0)
    return TraceSet.from_matrix(matrix, plaintexts, 1e-9)


def _grid(designs, noises):
    campaign = AttackCampaign(KEY, mtd_start=40, mtd_step=40)
    for index in range(designs):
        campaign.add_design(f"design-{index:02d}",
                            trace_source=_leaky_source)
    campaign.add_selection(AesSboxSelection(byte_index=0, bit_index=3))
    campaign.add_attack("dpa")
    for index in range(noises):
        campaign.add_noise(f"noise-{index}",
                           (lambda i=index: GaussianNoise(0.05 + 0.1 * i,
                                                          seed=i)))
    return campaign


def _timed(run):
    start = time.perf_counter()
    result = run()
    return time.perf_counter() - start, result


def _synthetic_frame(rows):
    rng = np.random.default_rng(7)
    disclosure = rng.integers(40, 4000, size=rows)
    undisclosed = rng.random(rows) < 0.25
    return CampaignFrame.from_rows([
        CampaignRow(
            design=f"design-{index % 40:02d}",
            selection="sbox[0]:3",
            attack=("dpa", "cpa-hw")[index % 2],
            noise=f"noise-{index % 5}",
            trace_count=4000,
            best_guess=int(index % 256),
            best_peak=float(rng.random()),
            correct_guess=43,
            rank_of_correct=int(1 + (index % 7)),
            discrimination=float(1.0 + rng.random()),
            disclosure=None if undisclosed[index] else int(disclosure[index]),
        )
        for index in range(rows)
    ])


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--designs", type=int, default=16)
    parser.add_argument("--noises", type=int, default=4)
    parser.add_argument("--traces", type=int, default=200)
    parser.add_argument("--query-rows", type=int, default=10000)
    parser.add_argument("--max-overhead", type=float, default=1.5,
                        help="max store-run / in-memory-run wall ratio")
    parser.add_argument("--max-query-ms", type=float, default=500.0)
    args = parser.parse_args()

    scenarios = args.designs * args.noises
    lines = [f"Campaign store: {args.designs} designs x {args.noises} "
             f"noises = {scenarios} scenarios, {args.traces} traces each",
             ""]

    workdir = Path(tempfile.mkdtemp(prefix="bench_store_"))
    try:
        # --------------------------------------------- spill overhead gate
        mem_time, in_memory = _timed(
            lambda: _grid(args.designs, args.noises).run(args.traces, seed=3))
        store_time, stored = _timed(
            lambda: _grid(args.designs, args.noises).run(
                args.traces, seed=3, store=workdir / "fresh"))
        overhead = store_time / mem_time
        assert stored.table() == in_memory.table(), \
            "store run diverged from the in-memory run"
        lines += [
            f"spill ({scenarios} scenario shards + manifest updates):",
            f"  in-memory run: {mem_time:8.3f} s",
            f"  store run:     {store_time:8.3f} s",
            f"  overhead: {overhead:.2f}x "
            f"(required <= {args.max_overhead:.2f}x)",
            "",
        ]

        # --------------------------------------------- resume identity gate
        resume_time, resumed = _timed(
            lambda: _grid(args.designs, args.noises).run(
                args.traces, seed=3, store=workdir / "fresh"))
        assert resumed.table() == in_memory.table(), \
            "resumed run diverged from the in-memory run"

        # Simulated crash at the grid midpoint: seed a second store with
        # the first half of the fresh store's shards, then resume.
        fresh = open_store(workdir / "fresh")
        half = fresh.manifest.scenario_keys[:scenarios // 2]
        (workdir / "crashed").mkdir()
        crashed_manifest = type(fresh.manifest)(
            kind=fresh.manifest.kind, fingerprint=fresh.manifest.fingerprint,
            scenario_keys=list(fresh.manifest.scenario_keys))
        for key in half:
            record = fresh.manifest.shards[key]
            for filename in record.tables.values():
                shutil.copy(workdir / "fresh" / filename,
                            workdir / "crashed" / filename)
            crashed_manifest.record_shard(record)
        crashed_manifest.save(workdir / "crashed")
        partial = load_campaign_result(workdir / "crashed")
        crash_resume_time, crash_resumed = _timed(
            lambda: _grid(args.designs, args.noises).run(
                args.traces, seed=3, store=workdir / "crashed"))
        assert crash_resumed.table() == in_memory.table(), \
            "crash-resumed run diverged from the uninterrupted run"
        merged_identical = (
            (workdir / "fresh" / "frame.npz").read_bytes()
            == (workdir / "crashed" / "frame.npz").read_bytes())
        assert merged_identical, "crash-resumed merged npz differs"
        lines += [
            "resume:",
            f"  full resume (0 of {scenarios} re-run): "
            f"{resume_time:8.3f} s",
            f"  crash resume ({scenarios - len(half)} of {scenarios} "
            f"re-run, partial view held {len(partial.rows)} rows): "
            f"{crash_resume_time:8.3f} s",
            "  merged frame.npz byte-identical to the uninterrupted run",
            "",
        ]

        # ------------------------------------------------ query latency gate
        frame = _synthetic_frame(args.query_rows)
        percentile_ms, percentiles = _timed(
            lambda: mtd_percentiles(
                frame.lazy().filter(attack="dpa").collect(),
                by=("design",), q=(50, 90, 99)))
        percentile_ms *= 1e3
        pivot_ms, pivot = _timed(lambda: verdict_pivot(frame))
        pivot_ms *= 1e3
        lines += [
            f"query ({len(frame)} rows):",
            f"  filter + group-by MTD percentiles "
            f"({len(percentiles)} groups): {percentile_ms:8.1f} ms",
            f"  verdict pivot ({len(pivot.row_labels)} x "
            f"{len(pivot.col_labels)}): {pivot_ms:8.1f} ms",
            f"  (each required <= {args.max_query_ms:.0f} ms)",
            "",
        ]
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    report = "\n".join(lines)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "campaign_store.txt").write_text(report + "\n")
    print(report)

    record_benchmark(
        "campaign_store", wall_time_s=store_time,
        speedup=mem_time / resume_time,
        assertions={
            "store_matches_in_memory": True,
            "crash_resume_byte_identical": merged_identical,
            "spill_overhead_gate": overhead <= args.max_overhead,
            "resume_cheaper_than_rerun": resume_time < mem_time,
            "query_latency_gate": (percentile_ms <= args.max_query_ms
                                   and pivot_ms <= args.max_query_ms),
        },
        metrics={"spill_overhead": overhead, "resume_s": resume_time,
                 "percentile_ms": percentile_ms, "pivot_ms": pivot_ms})
    assert overhead <= args.max_overhead, (
        f"store spill overhead {overhead:.2f}x above the "
        f"{args.max_overhead:.2f}x gate")
    assert resume_time < mem_time, (
        f"full resume ({resume_time:.3f} s) should be cheaper than "
        f"re-running the campaign ({mem_time:.3f} s)")
    assert percentile_ms <= args.max_query_ms, (
        f"MTD percentile query took {percentile_ms:.1f} ms, above the "
        f"{args.max_query_ms:.0f} ms gate")
    assert pivot_ms <= args.max_query_ms, (
        f"verdict pivot took {pivot_ms:.1f} ms, above the "
        f"{args.max_query_ms:.0f} ms gate")
    print(f"OK: {overhead:.2f}x spill overhead over {scenarios} scenarios, "
          f"byte-identical crash resume, {percentile_ms:.0f} ms percentile "
          f"query / {pivot_ms:.0f} ms pivot on {len(frame)} rows.")


if __name__ == "__main__":
    main()
