"""Experiment E2 — Fig. 7 of the paper.

Electrical signature of the dual-rail XOR when individual net capacitances are
unbalanced (the paper sweeps Cd = 8 fF up to 32 fF):

  (a) Cl31 = 16 fF  — one peak region at the end of each phase;
  (b) Cl21 = 16 fF  — the imbalance is inside the data path, so the bias
      appears earlier and everything after the node is shifted;
  (c) Cl11 = Cl12 = 16 fF — the shift starts at the very beginning;
  (d) Cl11 = Cl12 = 32 fF — larger imbalance, strongest signature.

The reproduced quantities are the first-deviation time (the earlier the
unbalanced level, the earlier the signature starts), the signature energy
(grows with the imbalance) and the dominant leaking level reported by the
formal model.
"""

import time

import numpy as np
import pytest

from conftest import record_benchmark
from repro.circuits import build_dual_rail_xor
from repro.core import FormalCurrentModel, signature_from_traces, signature_terms
from repro.electrical import per_computation_currents

PAIRS = [(0, 0), (1, 1), (0, 1), (1, 0)]

CASES = {
    "a: Cl31=16fF": [(3, 1, 16.0)],
    "b: Cl21=16fF": [(2, 1, 16.0)],
    "c: Cl11=Cl12=16fF": [(1, 1, 16.0), (1, 2, 16.0)],
    "d: Cl11=Cl12=32fF": [(1, 1, 32.0), (1, 2, 32.0)],
}


def _build_case(modifications):
    block = build_dual_rail_xor("xor_case")
    for level, position, cap in modifications:
        block.set_level_cap(level, position, cap)
    return block


def _first_deviation(waveform):
    samples = np.abs(waveform.samples)
    if samples.max() == 0.0:
        return float("inf")
    return float(np.argmax(samples > 0.05 * samples.max())) * waveform.dt


@pytest.fixture(scope="module")
def fig7_results():
    t0 = time.perf_counter()
    results = {}
    for label, modifications in CASES.items():
        block = _build_case(modifications)
        waves = per_computation_currents(block, PAIRS)
        simulated = signature_from_traces(waves[:2], waves[2:])
        report = signature_terms(FormalCurrentModel.from_block(block))
        results[label] = {
            "simulated": simulated,
            "formal": report,
            "first_dev": _first_deviation(report.waveform),
            "energy": simulated.energy(),
            "peak": simulated.max_abs(),
        }
    return results, time.perf_counter() - t0


def test_fig7_shape_claims(fig7_results, write_report):
    fig7_results, elapsed = fig7_results
    a = fig7_results["a: Cl31=16fF"]
    b = fig7_results["b: Cl21=16fF"]
    c = fig7_results["c: Cl11=Cl12=16fF"]
    d = fig7_results["d: Cl11=Cl12=32fF"]

    # Every unbalanced configuration leaks.
    for case in (a, b, c, d):
        assert case["peak"] > 0

    # The earlier the unbalanced node, the earlier the signature deviates
    # (Fig. 7b-d: "all computing operations after this gate are shifted").
    assert c["first_dev"] < b["first_dev"] < a["first_dev"]
    assert d["first_dev"] <= c["first_dev"]

    # Doubling the imbalance amplifies the signature (Fig. 7c vs 7d).
    assert d["energy"] > c["energy"]

    # The formal model attributes the leak to the modified level.
    assert fig7_results["a: Cl31=16fF"]["formal"].dominant_level() == 3
    assert fig7_results["c: Cl11=Cl12=16fF"]["formal"].dominant_level() in (1, 2)

    rows = [
        "Fig. 7 — signature of the dual-rail XOR with unbalanced net capacitances",
        f"{'case':<22s} {'|S| peak (A)':>13s} {'energy (A^2.s)':>15s} "
        f"{'first dev. (ps)':>16s} {'dominant level':>15s}",
    ]
    for label, case in fig7_results.items():
        rows.append(
            f"{label:<22s} {case['peak']:>13.3e} {case['energy']:>15.3e} "
            f"{case['first_dev'] * 1e12:>16.1f} "
            f"{str(case['formal'].dominant_level()):>15s}"
        )
    rows += [
        "",
        "Paper: (a) one peak at the end of each phase, (b) two peaks, (c)/(d)",
        "the whole curve shifts and the signature is maximal for the largest",
        "capacitance difference.",
    ]
    write_report("fig7_capacitance_sweep", "\n".join(rows))
    record_benchmark(
        "fig7_capacitance_sweep", wall_time_s=elapsed,
        assertions={
            "earlier_imbalance_deviates_earlier":
                c["first_dev"] < b["first_dev"] < a["first_dev"],
            "larger_imbalance_more_energy": d["energy"] > c["energy"],
        },
        metrics={label: case["peak"] for label, case in fig7_results.items()})


def test_fig7_sweep_benchmark(benchmark):
    """Timing of the four-case capacitance sweep (simulation + signature)."""

    def sweep():
        peaks = []
        for modifications in CASES.values():
            block = _build_case(modifications)
            waves = per_computation_currents(block, PAIRS)
            peaks.append(signature_from_traces(waves[:2], waves[2:]).max_abs())
        return peaks

    peaks = benchmark(sweep)
    assert all(p > 0 for p in peaks)
