"""Experiment E4 — equations (1)-(6) of the paper.

The formal model of Section III applied to the dual-rail XOR of Fig. 4/5:

* the graph exploration yields Nt = Nc = 4 with one switching gate per level
  (N_1j = N_2j = N_3j = N_4j = 1);
* the block current profile decomposes as
  Pdc(t) = I11 + I21 + I31 + I41 + Pdn(t) (equation (6));
* the block dynamic power follows equation (3).
"""

import time

import pytest

from conftest import record_benchmark
from repro.circuits import build_dual_rail_xor, simulate_two_operand_block
from repro.core import (
    FormalCurrentModel,
    block_dynamic_power,
    xor_current_decomposition,
)
from repro.electrical import HCMOS9_LIKE
from repro.graph import build_circuit_graph, compute_levels, switching_profile


@pytest.fixture(scope="module")
def xor_model():
    block = build_dual_rail_xor("xor_eq6")
    return block, FormalCurrentModel.from_block(block)


def test_eq6_graph_quantities(xor_model, write_report):
    block, model = xor_model
    t0 = time.perf_counter()

    # Structural quantities from the graph (Section III).
    graph = build_circuit_graph(block.netlist)
    levels = compute_levels(graph)
    simulated = simulate_two_operand_block(block, [(1, 0)])
    profile = switching_profile(simulated.trace, levels)

    assert model.nc == 4
    assert model.nt(0) == model.nt(1) == 4
    assert profile.nc == 4 and profile.nt == 4
    assert profile.nij == {1: 1, 2: 1, 3: 1, 4: 1}

    labels = [label for label, _ in xor_current_decomposition(block, 0)]
    assert labels == ["I11", "I12", "I21", "I31", "I41"]

    # Equation (3): block power at a 1 MHz acknowledge rate.
    caps = [term.cap_ff for term in model.terms_for(0)]
    power = block_dynamic_power(caps, 1e6, HCMOS9_LIKE.vdd)
    assert power > 0

    profile_waveform = model.profile(0)
    expected_charge = sum(t.weight * t.cap_ff * 1e-15 * HCMOS9_LIKE.vdd
                          for t in model.terms_for(0))
    assert profile_waveform.integral() == pytest.approx(expected_charge, rel=1e-3)

    rows = [
        "Equations (1)-(6) — formal current model of the dual-rail XOR",
        f"Nc (levels)                 : {model.nc}   (paper: 4)",
        f"Nt (transitions/evaluation) : {model.nt(0)}   (paper: 4)",
        f"Nij per level               : {model.nij(0)}   (paper: one per level)",
        f"eq. (10) terms for set S0   : {labels}",
        f"block dynamic power @1 MHz  : {power * 1e9:.3f} nW (eq. (3))",
        f"profile charge per phase    : {profile_waveform.integral() * 1e15:.2f} fC",
        f"profile peak current        : {profile_waveform.max_abs() * 1e6:.1f} uA",
    ]
    write_report("eq6_current_profile", "\n".join(rows))
    record_benchmark(
        "eq6_current_profile", wall_time_s=time.perf_counter() - t0,
        assertions={"nc_matches_paper": model.nc == 4,
                    "nt_matches_paper": model.nt(0) == 4,
                    "charge_matches_formal_model": True},
        metrics={"dynamic_power_nw_1mhz": power * 1e9,
                 "profile_charge_fc": profile_waveform.integral() * 1e15})


def test_eq6_model_benchmark(benchmark, xor_model):
    """Timing of building the formal model and predicting the profile."""
    block, _ = xor_model

    def build_and_profile():
        model = FormalCurrentModel.from_block(block)
        return model.profile(0).integral()

    charge = benchmark(build_and_profile)
    assert charge > 0
