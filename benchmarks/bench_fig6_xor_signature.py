"""Experiment E1 — Fig. 6 of the paper.

Electrical signature of the dual-rail XOR gate when every load capacitance is
equal (Cl_ij = Cd = 8 fF): the signature is null in the ideal case and shows
only small residual peaks once intra-die parasitic mismatch is accounted for,
far below the peaks produced by a deliberate routing imbalance (Fig. 7).
"""

import time

import pytest

from conftest import record_benchmark
from repro.circuits import build_dual_rail_xor
from repro.core import find_peaks, signature_from_traces
from repro.electrical import apply_process_variation, per_computation_currents

PAIRS = [(0, 0), (1, 1), (0, 1), (1, 0)]  # first two produce c=0, last two c=1


def _signature(block):
    waves = per_computation_currents(block, PAIRS)
    return signature_from_traces(waves[:2], waves[2:])


@pytest.fixture(scope="module")
def fig6_results():
    t0 = time.perf_counter()
    ideal = _signature(build_dual_rail_xor("xor_ideal"))

    residual_block = build_dual_rail_xor("xor_residual")
    apply_process_variation(residual_block.netlist, sigma_ff=0.1, seed=2005)
    residual = _signature(residual_block)

    unbalanced_block = build_dual_rail_xor("xor_unbalanced")
    unbalanced_block.set_level_cap(3, 1, 16.0)
    unbalanced = _signature(unbalanced_block)

    return ideal, residual, unbalanced, time.perf_counter() - t0


def test_fig6_residual_signature(fig6_results, write_report):
    ideal, residual, unbalanced, elapsed = fig6_results

    assert ideal.max_abs() == 0.0
    assert 0.0 < residual.max_abs() < 0.5 * unbalanced.max_abs()

    rows = [
        "Fig. 6 — electrical signature of the dual-rail XOR, all Cl_ij = 8 fF",
        f"{'configuration':<42s} {'|S| peak (A)':>14s} {'peaks':>6s}",
        f"{'ideal (perfectly matched capacitances)':<42s} {ideal.max_abs():>14.3e} "
        f"{len(find_peaks(ideal)):>6d}",
        f"{'matched + 0.1 fF intra-die mismatch':<42s} {residual.max_abs():>14.3e} "
        f"{len(find_peaks(residual)):>6d}",
        f"{'Cl31 = 16 fF (Fig. 7a, for comparison)':<42s} {unbalanced.max_abs():>14.3e} "
        f"{len(find_peaks(unbalanced)):>6d}",
        "",
        "Paper: with equal load capacitances the signature shows only a few",
        "small peaks due to internal gate capacitances (Cpar, Csc).",
    ]
    write_report("fig6_xor_signature", "\n".join(rows))
    record_benchmark(
        "fig6_xor_signature", wall_time_s=elapsed,
        assertions={
            "ideal_signature_null": ideal.max_abs() == 0.0,
            "residual_below_unbalanced":
                residual.max_abs() < 0.5 * unbalanced.max_abs(),
        },
        metrics={"residual_peak_a": residual.max_abs(),
                 "unbalanced_peak_a": unbalanced.max_abs()})


def test_fig6_signature_benchmark(benchmark):
    """Timing of one full signature evaluation (simulate 4 computations,
    synthesize currents, average the DPA sets)."""
    block = build_dual_rail_xor("xor_bench")
    result = benchmark(lambda: _signature(block).max_abs())
    assert result == 0.0
