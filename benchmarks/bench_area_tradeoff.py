"""Experiment E7 (ablation) — area vs criterion trade-off of the hierarchical flow.

The paper notes that the hierarchical flow costs about 20 % of core area.  This
ablation sweeps the per-block fence utilization: tighter fences (higher
utilization) reduce the area overhead but leave the cells less room, while
looser fences cost area.  In every configuration the hierarchical flow must
keep the criterion well below the flat reference.
"""

import time

import pytest

from conftest import record_benchmark
from repro.asyncaes import AesArchitecture, AesNetlistGenerator
from repro.core import evaluate_netlist_channels
from repro.pnr import run_flat_flow, run_hierarchical_flow

ARCHITECTURE = AesArchitecture(word_width=16, detail=0.15)
UTILIZATIONS = (0.60, 0.78, 0.90)
EFFORT = 0.8


def _fresh_netlist(tag):
    return AesNetlistGenerator(ARCHITECTURE, name=f"aes_area_{tag}").build()


@pytest.fixture(scope="module")
def sweep_results():
    t0 = time.perf_counter()
    flat_netlist = _fresh_netlist("flat")
    flat_design = run_flat_flow(flat_netlist, seed=2, effort=EFFORT)
    flat_report = evaluate_netlist_channels(flat_netlist, design_name="flat")
    flat_area = flat_design.area_report().die_area_um2

    points = []
    for utilization in UTILIZATIONS:
        netlist = _fresh_netlist(f"u{int(utilization * 100)}")
        design = run_hierarchical_flow(netlist, seed=2, effort=EFFORT,
                                       block_utilization=utilization)
        report = evaluate_netlist_channels(netlist, design_name=f"hier_u{utilization}")
        area = design.area_report().die_area_um2
        points.append({
            "utilization": utilization,
            "area_um2": area,
            "overhead": (area - flat_area) / flat_area,
            "max_dA": report.max_dissymmetry,
            "mean_dA": report.mean_dissymmetry,
        })
    return flat_report, flat_area, points, time.perf_counter() - t0


def test_area_tradeoff(sweep_results, write_report):
    flat_report, flat_area, points, elapsed = sweep_results

    # Tighter fences (higher utilization) shrink the die.
    areas = [p["area_um2"] for p in points]
    assert areas[0] > areas[-1]

    # Every hierarchical configuration improves on the flat flow's criterion.
    for point in points:
        assert point["max_dA"] < flat_report.max_dissymmetry
        assert point["mean_dA"] < flat_report.mean_dissymmetry

    rows = [
        "Area vs criterion trade-off of the hierarchical flow "
        f"(flat reference: die {flat_area:.0f} um2, max dA {flat_report.max_dissymmetry:.2f}, "
        f"mean dA {flat_report.mean_dissymmetry:.3f})",
        f"{'block utilization':>18s} {'die area (um2)':>15s} {'area overhead':>14s} "
        f"{'max dA':>8s} {'mean dA':>8s}",
    ]
    for point in points:
        rows.append(
            f"{point['utilization']:>18.2f} {point['area_um2']:>15.0f} "
            f"{point['overhead']:>+14.1%} {point['max_dA']:>8.2f} {point['mean_dA']:>8.3f}"
        )
    rows.append("")
    rows.append("Paper: the constrained floorplan costs about 20 % of core area.")
    write_report("area_tradeoff", "\n".join(rows))
    record_benchmark(
        "area_tradeoff", wall_time_s=elapsed,
        assertions={
            "tighter_fences_shrink_die": areas[0] > areas[-1],
            "hier_beats_flat_criterion": all(
                p["max_dA"] < flat_report.max_dissymmetry for p in points),
        },
        metrics={"flat_die_area_um2": flat_area,
                 "overheads": [p["overhead"] for p in points]})


def test_area_tradeoff_benchmark(benchmark):
    """Timing of one hierarchical place-and-route of the reduced AES."""

    def run_once():
        netlist = _fresh_netlist("bench")
        design = run_hierarchical_flow(netlist, seed=5, effort=0.5)
        return design.area_report().die_area_um2

    area = benchmark.pedantic(run_once, rounds=1, iterations=1)
    assert area > 0
