"""Throughput benchmark of the batched trace/attack engine vs the reference
per-trace, per-guess paths.

Measures, on an end-to-end key-recovery workload (default: 1000 traces, 256
key guesses):

* trace generation  — ``AesPowerTraceGenerator.trace`` in a Python loop vs
  ``trace_batch`` (traces/second);
* the DPA attack    — ``dpa_attack_reference`` (one partition + two set
  averages per guess) vs the vectorized multi-guess ``dpa_attack``
  (full attacks/second and guess evaluations/second);
* messages-to-disclosure — full re-attack per prefix size vs the
  incremental cumulative-sum sweep.

Run with:  PYTHONPATH=src python benchmarks/bench_engine_throughput.py
           [--traces 1000] [--guesses 256]

The script asserts the >= 10x end-to-end speedup of the engine when run at
the full workload size and writes its report to
``benchmarks/results/engine_throughput.txt``.
"""

import argparse
import time
from pathlib import Path

import numpy as np

from conftest import record_benchmark
from repro.asyncaes import AesArchitecture, AesNetlistGenerator, AesPowerTraceGenerator
from repro.core import (
    AesSboxSelection,
    TraceSet,
    dpa_attack,
    dpa_attack_reference,
    messages_to_disclosure,
)
from repro.crypto import random_key
from repro.crypto.keys import PlaintextGenerator

RESULTS_DIR = Path(__file__).parent / "results"


def _mtd_reference(traces, selection, correct, *, start, step):
    """The former O(N^2 * m) sweep: one full re-attack per prefix size."""
    count = start
    while count <= len(traces):
        attack = dpa_attack_reference(traces.subset(count), selection)
        if attack.rank_of(correct) == 1:
            return count
        count += step
    return None


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--traces", type=int, default=1000)
    parser.add_argument("--guesses", type=int, default=256)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--skip-mtd", action="store_true",
                        help="skip the messages-to-disclosure comparison")
    args = parser.parse_args()

    key = random_key(16, seed=args.seed)
    architecture = AesArchitecture(word_width=8, detail=0.05)
    netlist = AesNetlistGenerator(architecture, name="aes_throughput").build()
    # Unbalance the S-box output channel so the attack has a leak to chase.
    target = architecture.channel("bytesub0_to_sr0").rail_net(0, 1)
    netlist.set_routing_cap(target, netlist.net(target).routing_cap_ff + 40.0)
    generator = AesPowerTraceGenerator(netlist, key, architecture=architecture)
    plaintexts = PlaintextGenerator(seed=args.seed + 1).batch(args.traces)
    selection = AesSboxSelection(byte_index=3, bit_index=0)
    guesses = list(range(args.guesses))

    lines = [f"Engine throughput: {args.traces} traces x {args.guesses} guesses", ""]

    # ------------------------------------------------------ trace generation
    t0 = time.perf_counter()
    per_trace = TraceSet()
    for plaintext in plaintexts:
        per_trace.add(generator.trace(plaintext), plaintext)
    old_gen = time.perf_counter() - t0

    t0 = time.perf_counter()
    traces = generator.trace_batch(plaintexts)
    new_gen = time.perf_counter() - t0

    assert np.allclose(per_trace.matrix(), traces.matrix()), \
        "batched traces diverged from the per-trace reference"
    gen_speedup = old_gen / new_gen
    lines += [
        f"trace generation  per-trace : {old_gen:8.3f} s "
        f"({args.traces / old_gen:10.1f} traces/s)",
        f"trace generation  batched   : {new_gen:8.3f} s "
        f"({args.traces / new_gen:10.1f} traces/s)   x{gen_speedup:.1f}",
    ]

    # --------------------------------------------------------------- attack
    traces.matrix()  # both paths start from an aligned matrix
    t0 = time.perf_counter()
    reference = dpa_attack_reference(traces, selection, guesses=guesses)
    old_attack = time.perf_counter() - t0

    t0 = time.perf_counter()
    batched = dpa_attack(traces, selection, guesses=guesses)
    new_attack = time.perf_counter() - t0

    assert np.allclose([r.peak for r in batched.results],
                       [r.peak for r in reference.results]), \
        "batched attack diverged from the per-guess reference"
    attack_speedup = old_attack / new_attack
    lines += [
        f"{args.guesses}-guess attack  per-guess : {old_attack:8.3f} s "
        f"({1 / old_attack:10.2f} attacks/s, "
        f"{len(guesses) / old_attack:8.1f} guess-evals/s)",
        f"{args.guesses}-guess attack  batched   : {new_attack:8.3f} s "
        f"({1 / new_attack:10.2f} attacks/s, "
        f"{len(guesses) / new_attack:8.1f} guess-evals/s)   x{attack_speedup:.1f}",
    ]

    # ------------------------------------------------ messages to disclosure
    if not args.skip_mtd:
        step = max(args.traces // 8, 1)
        t0 = time.perf_counter()
        old_mtd = _mtd_reference(traces, selection, key[3], start=step, step=step)
        old_mtd_time = time.perf_counter() - t0
        t0 = time.perf_counter()
        new_mtd = messages_to_disclosure(traces, selection, key[3],
                                         start=step, step=step)
        new_mtd_time = time.perf_counter() - t0
        assert old_mtd == new_mtd, "incremental disclosure sweep diverged"
        lines += [
            f"disclosure sweep  re-attack : {old_mtd_time:8.3f} s (MTD = {old_mtd})",
            f"disclosure sweep  cumulative: {new_mtd_time:8.3f} s (MTD = {new_mtd})"
            f"   x{old_mtd_time / new_mtd_time:.1f}",
        ]

    old_total = old_gen + old_attack
    new_total = new_gen + new_attack
    total_speedup = old_total / new_total
    lines += ["", f"end-to-end key recovery: {old_total:.3f} s -> {new_total:.3f} s "
                  f"(x{total_speedup:.1f})"]

    report = "\n".join(lines)
    print(report)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "engine_throughput.txt").write_text(report + "\n")

    full_workload = args.traces >= 1000 and args.guesses >= 256
    record_benchmark(
        "engine_throughput", wall_time_s=old_total + new_total,
        speedup=total_speedup,
        assertions={"speedup_10x": (total_speedup >= 10.0
                                    if full_workload else None)},
        metrics={"generation_speedup": gen_speedup,
                 "attack_speedup": attack_speedup})
    if full_workload:
        assert total_speedup >= 10.0, \
            f"batched engine only x{total_speedup:.1f} faster (need >= 10x)"
        print("OK: batched engine is >= 10x faster end to end")


if __name__ == "__main__":
    main()
