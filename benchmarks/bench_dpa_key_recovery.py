"""Experiment E6 (extension) — end-to-end DPA key recovery on the
asynchronous AES.

The paper's silicon measurements were still pending at publication time; this
benchmark runs the complete attack the paper formalises on the synthetic
traces of both place-and-route flows: first-round SubBytes selection function,
growing number of traces, key-byte ranking.  The flat placement (AES_v2)
discloses the key byte while the hierarchically placed design (AES_v1)
resists at the same trace budget — the end-to-end form of the paper's
conclusion.
"""

import time

import pytest

from conftest import record_benchmark
from repro.asyncaes import AesArchitecture, AesNetlistGenerator, AesPowerTraceGenerator
from repro.core import (
    AesSboxSelection,
    AttackCampaign,
    KeyRecoveryCurve,
    KeyRecoveryPoint,
    dpa_attack,
)
from repro.crypto import random_key
from repro.crypto.keys import PlaintextGenerator
from repro.pnr import run_flat_flow, run_hierarchical_flow

KEY = random_key(16, seed=7)
ARCHITECTURE = AesArchitecture(word_width=32, detail=0.15)
TRACE_COUNTS = (200, 500, 1000)


def _recovery_curve(netlist, plaintexts, label):
    generator = AesPowerTraceGenerator(netlist, KEY, architecture=ARCHITECTURE)
    traces = generator.trace_set(plaintexts)
    best_bit = max(range(8), key=lambda j: generator.channel_dissymmetry(
        "bytesub0_to_sr0", 24 + j))
    selection = AesSboxSelection(byte_index=0, bit_index=best_bit)
    curve = KeyRecoveryCurve(selection_name=f"{label}:{selection.name}",
                             correct_guess=KEY[0])
    for count in TRACE_COUNTS:
        attack = dpa_attack(traces.subset(count), selection)
        correct = attack.result_for(KEY[0]).peak
        wrong = max(r.peak for r in attack.results if r.guess != KEY[0])
        curve.points.append(KeyRecoveryPoint(
            trace_count=count,
            rank_of_correct=attack.rank_of(KEY[0]),
            best_guess=attack.best_guess,
            correct_peak=correct,
            best_wrong_peak=wrong,
        ))
    return curve


@pytest.fixture(scope="module")
def recovery_curves():
    t0 = time.perf_counter()
    plaintexts = PlaintextGenerator(seed=11).batch(max(TRACE_COUNTS))
    flat_netlist = AesNetlistGenerator(ARCHITECTURE, name="aes_flat_e6").build()
    run_flat_flow(flat_netlist, seed=3, effort=0.8)
    hier_netlist = AesNetlistGenerator(ARCHITECTURE, name="aes_hier_e6").build()
    run_hierarchical_flow(hier_netlist, seed=3, effort=0.8)

    # One campaign over both designs and both first-order attacks: the
    # orchestrated form of the same comparison, cross-checked in the report
    # against the recovery curves.
    probe = AesPowerTraceGenerator(flat_netlist, KEY, architecture=ARCHITECTURE)
    best_bit = max(range(8), key=lambda j: probe.channel_dissymmetry(
        "bytesub0_to_sr0", 24 + j))
    campaign = AttackCampaign(KEY, architecture=ARCHITECTURE,
                              mtd_start=20, mtd_step=20)
    campaign.add_design("AES_v2_flat", flat_netlist)
    campaign.add_design("AES_v1_hier", hier_netlist)
    campaign.add_selection(AesSboxSelection(byte_index=0, bit_index=best_bit))
    campaign.add_attack("dpa")
    campaign.add_attack("cpa", model="bit")
    campaign_result = campaign.run(plaintexts=plaintexts)

    return {
        "flat": _recovery_curve(flat_netlist, plaintexts, "AES_v2_flat"),
        "hierarchical": _recovery_curve(hier_netlist, plaintexts, "AES_v1_hier"),
        "campaign": campaign_result,
        "elapsed": time.perf_counter() - t0,
    }


def test_key_recovery_flat_vs_hierarchical(recovery_curves, write_report):
    flat = recovery_curves["flat"]
    hier = recovery_curves["hierarchical"]

    # The flat design discloses the key byte within the trace budget.
    assert flat.final_rank() == 1
    # The hierarchically placed design resists better: either it never ranks
    # the key first, or it needs more traces than the flat design.
    flat_mtd = flat.messages_to_disclosure()
    hier_mtd = hier.messages_to_disclosure()
    assert flat_mtd is not None
    assert hier_mtd is None or hier_mtd >= flat_mtd
    assert hier.final_rank() >= flat.final_rank()

    campaign = recovery_curves["campaign"]
    flat_dpa = campaign.row("AES_v2_flat", attack="dpa")
    flat_cpa = campaign.row("AES_v2_flat", attack="cpa-bit")
    # The correlation attack reads the same D bit but normalizes by the
    # per-sample variance, so it never needs more traces than the raw
    # difference of means (the 2x margin on the reference seeds is asserted
    # in tests/test_attack_suite.py and bench_cpa_throughput.py).
    assert flat_cpa.disclosure is not None and flat_dpa.disclosure is not None
    assert flat_cpa.disclosure <= flat_dpa.disclosure

    rows = [
        "End-to-end DPA key recovery on the asynchronous AES (byte 0)",
        "",
        "--- AES_v2 (flat place and route) ---",
        flat.as_table(),
        "",
        "--- AES_v1 (hierarchical place and route) ---",
        hier.as_table(),
        "",
        f"messages to disclosure: flat = {flat_mtd}, hierarchical = {hier_mtd}",
        "",
        "--- AttackCampaign comparison (batched engine, incremental MTD) ---",
        campaign.table(),
        "",
        f"CPA vs DPA on the flat design: {flat_cpa.disclosure} vs "
        f"{flat_dpa.disclosure} traces to disclosure",
        "",
        "The flat design leaks the key byte; the hierarchical design resists",
        "at the same trace budget (the paper's conclusion, evaluated end to end).",
    ]
    write_report("dpa_key_recovery", "\n".join(rows))
    record_benchmark(
        "dpa_key_recovery", wall_time_s=recovery_curves["elapsed"],
        assertions={
            "flat_discloses": flat.final_rank() == 1,
            "hier_resists": hier_mtd is None or hier_mtd >= flat_mtd,
            "cpa_not_worse_than_dpa":
                flat_cpa.disclosure <= flat_dpa.disclosure,
        },
        metrics={"flat_mtd": flat_mtd, "hier_mtd": hier_mtd,
                 "flat_cpa_disclosure": flat_cpa.disclosure,
                 "flat_dpa_disclosure": flat_dpa.disclosure})


def test_key_recovery_attack_benchmark(recovery_curves, benchmark):
    """Timing of one 256-guess DPA attack over 200 traces (attack only)."""
    plaintexts = PlaintextGenerator(seed=23).batch(200)
    netlist = AesNetlistGenerator(ARCHITECTURE, name="aes_bench_e6").build()
    run_flat_flow(netlist, seed=4, effort=0.4)
    generator = AesPowerTraceGenerator(netlist, KEY, architecture=ARCHITECTURE)
    traces = generator.trace_set(plaintexts)
    selection = AesSboxSelection(byte_index=0, bit_index=0)

    result = benchmark.pedantic(lambda: dpa_attack(traces, selection).best_peak,
                                rounds=1, iterations=1)
    assert result >= 0
