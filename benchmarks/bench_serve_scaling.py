"""Benchmark of the campaign execution service (repro.serve).

Three gates, on the deliberately *uneven* 32-scenario reference grid of
``python -m repro.serve`` (per-trace design costs spread over an order of
magnitude — the shape that tail-stalls scenario-level sharding):

* **scaling** — the service with 2 workers must finish the grid >=
  ``--min-speedup`` x faster than the serial run (enforced when the
  machine exposes >= 2 CPUs; on a single-CPU box the speedup is recorded
  and the gate degrades to a scheduling-overhead ceiling: the service run
  must stay within ``--max-overhead`` x serial);
* **transport** — trace chunks must ride the shared-memory rings, not
  pickle: ``serve.pickle_payload_bytes`` must stay 0 while
  ``serve.shm_bytes`` carries the full trace volume;
* **identity** — the merged ``frame.npz`` of the serial, pooled
  (``workers=2``) and service-scheduled store runs must be byte-identical.

Run with:  PYTHONPATH=src python benchmarks/bench_serve_scaling.py
           [--noises 8] [--traces 512] [--chunk-size 64]
           [--workers 2] [--min-speedup 1.7] [--max-overhead 1.6]

Writes its report to ``benchmarks/results/serve_scaling.txt``.
"""

import argparse
import os
import shutil
import tempfile
import time
from pathlib import Path

from conftest import record_benchmark
from repro.obs import Telemetry, use
from repro.serve import CampaignService, ServiceConfig
from repro.serve.__main__ import reference_campaign

RESULTS_DIR = Path(__file__).parent / "results"

#: The uneven per-design trace costs of the reference grid, scaled up so
#: chunk generation (the parallel part) dominates scheduling overhead.
COSTS = (10, 20, 40, 150)


def _timed(run):
    start = time.perf_counter()
    result = run()
    return time.perf_counter() - start, result


def _frame_bytes(path: Path) -> dict:
    return {name: (path / name).read_bytes()
            for name in ("frame.npz", "assessments.npz")}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--noises", type=int, default=8)
    parser.add_argument("--traces", type=int, default=512)
    parser.add_argument("--chunk-size", type=int, default=64)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--min-speedup", type=float, default=1.7,
                        help="required serial/service ratio (>= 2 CPUs)")
    parser.add_argument("--max-overhead", type=float, default=1.6,
                        help="single-CPU fallback: max service/serial ratio")
    args = parser.parse_args()

    cpus = len(os.sched_getaffinity(0))
    campaign = reference_campaign(noises=args.noises, costs=COSTS,
                                  samples=256)
    scenarios = args.noises * len(COSTS)
    kwargs = dict(trace_count=args.traces, streaming=True,
                  chunk_size=args.chunk_size, compute_disclosure=False)
    lines = [f"Campaign service: {scenarios} uneven scenarios "
             f"(costs {COSTS} x {args.noises} noise levels), "
             f"{args.traces} traces @ chunk {args.chunk_size}, "
             f"{args.workers} workers on {cpus} CPU(s)", ""]

    workdir = Path(tempfile.mkdtemp(prefix="bench_serve_"))
    try:
        serial_s, _ = _timed(lambda: campaign.run(
            store=workdir / "serial", **kwargs))
        pooled_s, _ = _timed(lambda: campaign.run(
            store=workdir / "pooled", workers=args.workers, **kwargs))

        telemetry = Telemetry()
        service = CampaignService(ServiceConfig(workers=args.workers))
        service.register("reference", campaign)
        with service, use(telemetry):
            service_s, _ = _timed(lambda: service.run(
                "reference", store=workdir / "served", **kwargs))
        root = telemetry.snapshot()

        # ------------------------------------------------- scaling gate
        speedup = serial_s / service_s
        overhead = service_s / serial_s
        scaling_enforced = cpus >= 2
        if scaling_enforced:
            scaling_ok = speedup >= args.min_speedup
            scaling_text = (f"  speedup: {speedup:.2f}x "
                            f"(required >= {args.min_speedup:.2f}x)")
        else:
            scaling_ok = overhead <= args.max_overhead
            scaling_text = (f"  single CPU: speedup gate off; overhead "
                            f"{overhead:.2f}x (required <= "
                            f"{args.max_overhead:.2f}x)")
        lines += [
            "scaling (chunk-level jobs over the persistent pool):",
            f"  serial run:            {serial_s:8.3f} s",
            f"  fork pool (workers={args.workers}): {pooled_s:8.3f} s "
            f"({serial_s / pooled_s:.2f}x)",
            f"  service  (workers={args.workers}): {service_s:8.3f} s",
            scaling_text,
            "",
        ]

        # ----------------------------------------------- transport gate
        shm_bytes = root.total("serve.shm_bytes")
        pickle_bytes = root.total("serve.pickle_payload_bytes")
        jobs = root.total("serve.jobs")
        transport_ok = pickle_bytes == 0 and shm_bytes > 0
        lines += [
            "transport (per-worker shared-memory rings):",
            f"  jobs scheduled:      {jobs:12,.0f}",
            f"  shm bytes:           {shm_bytes:12,.0f} "
            f"({shm_bytes / max(jobs, 1):,.0f} per job)",
            f"  pickled array bytes: {pickle_bytes:12,.0f} (required 0)",
            "",
        ]

        # ------------------------------------------------ identity gate
        serial_frames = _frame_bytes(workdir / "serial")
        identity_ok = (
            _frame_bytes(workdir / "pooled") == serial_frames
            and _frame_bytes(workdir / "served") == serial_frames)
        lines += [
            "identity:",
            f"  serial == pooled == service merged frames: {identity_ok}",
            "",
        ]
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    report = "\n".join(lines)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "serve_scaling.txt").write_text(report + "\n")
    print(report)

    record_benchmark(
        "serve_scaling", wall_time_s=service_s, speedup=speedup,
        assertions={
            "scaling_gate": scaling_ok,
            "trace_transport_pickle_free": transport_ok,
            "store_frames_byte_identical": identity_ok,
        },
        metrics={"cpus": cpus, "speedup_gate_enforced": scaling_enforced,
                 "serial_s": serial_s, "pooled_s": pooled_s,
                 "service_s": service_s, "shm_bytes": shm_bytes,
                 "pickle_payload_bytes": pickle_bytes, "jobs": jobs})
    assert identity_ok, \
        "merged store frames diverged across serial / pooled / service runs"
    assert transport_ok, (
        f"trace transport leaked {pickle_bytes:,.0f} pickled array bytes "
        f"(shm carried {shm_bytes:,.0f})")
    if scaling_enforced:
        assert scaling_ok, (
            f"service only {speedup:.2f}x faster than serial "
            f"(need >= {args.min_speedup:.2f}x on {cpus} CPUs)")
    else:
        assert scaling_ok, (
            f"service overhead {overhead:.2f}x over serial on a single "
            f"CPU (need <= {args.max_overhead:.2f}x)")
    print(f"OK: {speedup:.2f}x vs serial on {cpus} CPU(s), "
          f"{shm_bytes:,.0f} shm bytes / {pickle_bytes:,.0f} pickled, "
          f"byte-identical frames.")


if __name__ == "__main__":
    main()
