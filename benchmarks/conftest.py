"""Shared helpers for the reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper and writes a
small text report under ``benchmarks/results/`` so the numbers can be compared
against the paper (see EXPERIMENTS.md).  Run with ``pytest benchmarks/
--benchmark-only -s`` to also see the reports on stdout.

Every benchmark — pytest-style and script-style alike — also records a
machine-readable summary via :func:`record_benchmark`, one JSON file per
benchmark under ``benchmarks/results/<name>.json``, so CI can archive a
uniform metrics set across the whole suite.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def record_benchmark(name: str, *,
                     wall_time_s: Optional[float] = None,
                     speedup: Optional[float] = None,
                     assertions: Optional[dict] = None,
                     metrics: Optional[dict] = None) -> Path:
    """Write the uniform JSON record of one benchmark run.

    ``assertions`` documents the pass/fail gates the benchmark enforced
    (name -> bool); ``metrics`` carries free-form numbers (throughputs,
    errors against the paper's values, sizes).  Script benchmarks import
    this directly (``from conftest import record_benchmark`` — the
    benchmarks directory is ``sys.path[0]`` when run as a script);
    pytest benchmarks use it through the same import since conftest is
    importable inside the package directory.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    record = {
        "name": name,
        "wall_time_s": wall_time_s,
        "speedup": speedup,
        "assertions": assertions or {},
        "metrics": metrics or {},
    }
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(record, indent=2, sort_keys=True,
                               default=float) + "\n")
    return path


@pytest.fixture(scope="session")
def report_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def write_report(report_dir):
    """Write (and echo) the textual report of one experiment."""

    def _write(name: str, text: str) -> Path:
        path = report_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n===== {name} =====\n{text}\n")
        return path

    return _write
