"""Shared helpers for the reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper and writes a
small text report under ``benchmarks/results/`` so the numbers can be compared
against the paper (see EXPERIMENTS.md).  Run with ``pytest benchmarks/
--benchmark-only -s`` to also see the reports on stdout.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def report_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def write_report(report_dir):
    """Write (and echo) the textual report of one experiment."""

    def _write(name: str, text: str) -> Path:
        path = report_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n===== {name} =====\n{text}\n")
        return path

    return _write
