"""Throughput benchmark of the CPA engine and the sharded attack campaign.

Measures, on the reference asynchronous AES designs:

* CPA attack throughput — the vectorized 256-guess Pearson pass of
  :func:`repro.core.cpa.cpa_attack` (one centered matmul) against the
  per-guess reference loop (guess evaluations/second, extrapolated from a
  guess subsample);
* attack effectiveness — traces-to-disclosure of single-bit DPA vs CPA on
  the flat (leaking) design; at the full workload the benchmark asserts CPA
  discloses the key byte on at most **half** the traces DPA needs;
* sharded campaign scaling — the same (designs × attacks × noise) grid run
  serially and through the ``fork`` shard pool; the merged tables must be
  identical, and with ``--assert-speedup`` on a machine with >= 4 dedicated
  cores the benchmark asserts a >= 2x wall-clock speedup at 4 workers (the
  assertion is opt-in because shared CI runners and multithreaded BLAS make
  wall-clock gates flaky).

Run with:  PYTHONPATH=src python benchmarks/bench_cpa_throughput.py
           [--traces 1000] [--workers 4] [--assert-speedup]

The report lands in ``benchmarks/results/cpa_throughput.txt``.
"""

import argparse
import os
import time
from pathlib import Path

from conftest import record_benchmark
from repro.asyncaes import AesArchitecture, AesNetlistGenerator, AesPowerTraceGenerator
from repro.core import (
    AesSboxSelection,
    AttackCampaign,
    HammingWeightModel,
    cpa_attack,
    leakage_matrix,
    pearson_statistics,
)
from repro.crypto import random_key
from repro.crypto.keys import PlaintextGenerator
from repro.electrical.noise import GaussianNoise
from repro.pnr import run_flat_flow, run_hierarchical_flow

RESULTS_DIR = Path(__file__).parent / "results"


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--traces", type=int, default=1000)
    parser.add_argument("--guesses", type=int, default=256)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--assert-speedup", action="store_true",
                        help="enforce the >= 2x sharding speedup bound "
                             "(needs >= 4 dedicated cores)")
    args = parser.parse_args()
    full_workload = args.traces >= 600 and args.guesses == 256

    key = random_key(16, seed=args.seed)
    architecture = AesArchitecture(word_width=32, detail=0.15)
    print("placing the reference AES designs...")
    flat_netlist = AesNetlistGenerator(architecture, name="aes_cpa_flat").build()
    run_flat_flow(flat_netlist, seed=args.seed, effort=0.8)
    hier_netlist = AesNetlistGenerator(architecture, name="aes_cpa_hier").build()
    run_hierarchical_flow(hier_netlist, seed=args.seed, effort=0.8)

    generator = AesPowerTraceGenerator(flat_netlist, key,
                                       architecture=architecture)
    best_bit = max(range(8), key=lambda j: generator.channel_dissymmetry(
        "bytesub0_to_sr0", 24 + j))
    selection = AesSboxSelection(byte_index=0, bit_index=best_bit)
    plaintexts = PlaintextGenerator(seed=args.seed + 1).batch(args.traces)
    traces = generator.trace_batch(plaintexts)
    matrix = traces.matrix()
    guesses = list(range(args.guesses))

    lines = [f"CPA throughput: {args.traces} traces x {args.guesses} guesses "
             f"x {matrix.shape[1]} samples", ""]

    # ------------------------------------------------- CPA attack throughput
    model = HammingWeightModel(selection)
    start = time.perf_counter()
    cpa_attack(traces, model, guesses=guesses)
    batched_s = time.perf_counter() - start

    hypothesis = leakage_matrix(model, traces.plaintexts(), guesses)
    reference_guesses = min(16, len(guesses))
    start = time.perf_counter()
    for index in range(reference_guesses):
        pearson_statistics(matrix, hypothesis[index:index + 1])
    reference_s = ((time.perf_counter() - start)
                   * len(guesses) / reference_guesses)

    evals_per_s = args.traces * len(guesses) / batched_s
    lines += [
        f"vectorized cpa_attack        : {batched_s:8.3f} s "
        f"({evals_per_s:,.0f} trace-guess evals/s)",
        f"per-guess reference (extrap.): {reference_s:8.3f} s "
        f"(x{reference_s / batched_s:.1f} slower)",
        "",
    ]

    # ------------------------------------------- effectiveness: CPA vs DPA
    campaign = AttackCampaign(key, architecture=architecture,
                              mtd_start=20, mtd_step=20)
    campaign.add_design("AES_v2_flat", flat_netlist)
    campaign.add_design("AES_v1_hier", hier_netlist)
    campaign.add_selection(selection)
    campaign.add_attack("dpa")
    campaign.add_attack("cpa", model="bit")
    campaign.add_noise("noiseless")
    campaign.add_noise("sigma=2e-5",
                       lambda: GaussianNoise(2e-5, seed=args.seed + 2))

    start = time.perf_counter()
    serial = campaign.run(plaintexts=plaintexts)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    sharded = campaign.run(plaintexts=plaintexts, workers=args.workers)
    sharded_s = time.perf_counter() - start

    assert sharded.table() == serial.table(), \
        "sharded campaign diverged from the serial reference"

    dpa_mtd = serial.row("AES_v2_flat", attack="dpa",
                         noise="noiseless").disclosure
    cpa_mtd = serial.row("AES_v2_flat", attack="cpa-bit",
                         noise="noiseless").disclosure
    lines += [
        f"flat-design disclosure       : DPA = {dpa_mtd} traces, "
        f"CPA = {cpa_mtd} traces",
        "",
    ]
    if full_workload:
        assert dpa_mtd is not None and cpa_mtd is not None
        assert 2 * cpa_mtd <= dpa_mtd, \
            f"CPA needed {cpa_mtd} traces, more than half of DPA's {dpa_mtd}"

    # ------------------------------------------------- sharded campaign
    cores = os.cpu_count() or 1
    speedup = serial_s / sharded_s if sharded_s > 0 else float("inf")
    lines += [
        f"campaign grid                : 2 designs x 2 attacks x 2 noise "
        f"levels ({args.traces} traces/scenario)",
        f"serial campaign              : {serial_s:8.3f} s",
        f"sharded campaign ({args.workers} workers): {sharded_s:8.3f} s "
        f"(x{speedup:.2f}, {cores} cores available)",
        "tables identical             : yes",
    ]
    if args.assert_speedup:
        assert cores >= 4 and args.workers >= 4, \
            f"--assert-speedup needs >= 4 cores and >= 4 workers " \
            f"(have {cores} cores, {args.workers} workers)"
        assert speedup >= 2.0, \
            f"sharded campaign speedup x{speedup:.2f} is below the 2x bound"
        lines.append("speedup bound (>= 2x at 4 workers): PASS")
    else:
        lines.append(
            f"speedup bound not asserted (measured x{speedup:.2f}; "
            "run with --assert-speedup on >= 4 dedicated cores to enforce "
            "the >= 2x bound)")

    report = "\n".join(lines)
    print(report)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "cpa_throughput.txt").write_text(report + "\n")
    record_benchmark(
        "cpa_throughput", wall_time_s=serial_s + sharded_s, speedup=speedup,
        assertions={
            "tables_identical": True,
            "cpa_halves_dpa_budget": (2 * cpa_mtd <= dpa_mtd
                                      if full_workload else None),
            "sharded_speedup_2x": (speedup >= 2.0
                                   if args.assert_speedup else None),
        },
        metrics={"serial_s": serial_s, "sharded_s": sharded_s,
                 "dpa_mtd": dpa_mtd, "cpa_mtd": cpa_mtd})


if __name__ == "__main__":
    main()
