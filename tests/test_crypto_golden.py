"""Golden-vector tests: the crypto references pinned to published vectors.

AES is pinned to FIPS-197 Appendix B (the worked 128-bit example, including
its round-by-round intermediate states) and Appendix C (the 128/192/256-bit
example vectors); the batched cipher ``encrypt_states_batch`` is held to the
same vectors and to the scalar round API label by label.  DES is pinned to
the NIST/NBS known-answer vectors (variable-plaintext, variable-key and
table known-answer tests) plus the classic worked example.

These vectors are the ground truth every attack of the suite ultimately
relies on (selection functions and leakage models predict *these*
intermediates), so they are pinned independently of the algorithmic tests in
``test_crypto_aes.py`` / ``test_crypto_des.py``.
"""

import numpy as np
import pytest

from repro.crypto import AES, DES, aes_decrypt, aes_encrypt, des_decrypt
from repro.crypto.aes import encrypt_states_batch


def unhex(text: str):
    return [int(text[i:i + 2], 16) for i in range(0, len(text), 2)]


def hexstr(block) -> str:
    return "".join(f"{value:02x}" for value in block)


# --------------------------------------------------- FIPS-197 Appendix B
FIPS_B_KEY = unhex("2b7e151628aed2a6abf7158809cf4f3c")
FIPS_B_PLAINTEXT = unhex("3243f6a8885a308d313198a2e0370734")
FIPS_B_CIPHERTEXT = unhex("3925841d02dc09fbdc118597196a0b32")

#: Intermediate states of the Appendix B walkthrough (column-major byte
#: order, which for this implementation coincides with the block order).
FIPS_B_STATES = {
    "round0:addkey": "193de3bea0f4e22b9ac68d2ae9f84808",
    "round1:subbytes": "d42711aee0bf98f1b8b45de51e415230",
    "round1:shiftrows": "d4bf5d30e0b452aeb84111f11e2798e5",
    "round1:mixcolumns": "046681e5e0cb199a48f8d37a2806264c",
    "round1:addkey": "a49c7ff2689f352b6b5bea43026a5049",
    "round9:addkey": "eb40f21e592e38848ba113e71bc342d2",
    "round10:subbytes": "e9098972cb31075f3d327d94af2e2cb5",
    "round10:shiftrows": "e9317db5cb322c723d2e895faf090794",
}

# --------------------------------------------------- FIPS-197 Appendix C
FIPS_C_PLAINTEXT = unhex("00112233445566778899aabbccddeeff")
FIPS_C_VECTORS = [
    ("000102030405060708090a0b0c0d0e0f",
     "69c4e0d86a7b0430d8cdb78070b4c55a"),
    ("000102030405060708090a0b0c0d0e0f1011121314151617",
     "dda97ca4864cdfe06eaf70a0ec0d7191"),
    ("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
     "8ea2b7ca516745bfeafc49904b496089"),
]

# ------------------------------------------------------- DES known answers
#: (key, plaintext, ciphertext) from the NBS/NIST known-answer test tables.
DES_VECTORS = [
    # Variable-plaintext known-answer test (key of odd parity ones).
    ("0101010101010101", "8000000000000000", "95f8a5e5dd31d900"),
    ("0101010101010101", "4000000000000000", "dd7f121ca5015619"),
    # Variable-key known-answer test.
    ("8001010101010101", "0000000000000000", "95a8d72813daa94d"),
    # Table known-answer test.
    ("7ca110454a1a6e57", "01a1d6d039776742", "690f5b0d9a26939b"),
    # The classic worked example.
    ("133457799bbcdff1", "0123456789abcdef", "85e813540f0ab405"),
]


class TestAesAppendixB:
    def test_ciphertext(self):
        assert aes_encrypt(FIPS_B_PLAINTEXT, FIPS_B_KEY) == FIPS_B_CIPHERTEXT

    def test_round_states(self):
        trace = AES(FIPS_B_KEY).encrypt_with_trace(FIPS_B_PLAINTEXT)
        for label, expected in FIPS_B_STATES.items():
            assert hexstr(trace.states[label]) == expected, label

    def test_decrypt_inverts(self):
        assert aes_decrypt(FIPS_B_CIPHERTEXT, FIPS_B_KEY) == FIPS_B_PLAINTEXT


class TestAesAppendixC:
    @pytest.mark.parametrize("key_hex,cipher_hex", FIPS_C_VECTORS,
                             ids=["aes128", "aes192", "aes256"])
    def test_encrypt(self, key_hex, cipher_hex):
        assert aes_encrypt(FIPS_C_PLAINTEXT, unhex(key_hex)) == unhex(cipher_hex)

    @pytest.mark.parametrize("key_hex,cipher_hex", FIPS_C_VECTORS,
                             ids=["aes128", "aes192", "aes256"])
    def test_decrypt(self, key_hex, cipher_hex):
        assert aes_decrypt(unhex(cipher_hex), unhex(key_hex)) == FIPS_C_PLAINTEXT


class TestBatchCipherGolden:
    """``encrypt_states_batch`` held to the same FIPS-197 ground truth."""

    def test_appendix_vectors_in_one_batch(self):
        plaintexts = [FIPS_B_PLAINTEXT, FIPS_C_PLAINTEXT, [0] * 16, [0xFF] * 16]
        states = encrypt_states_batch(FIPS_B_KEY, plaintexts)
        assert hexstr(states["round10:addkey"][0]) == hexstr(FIPS_B_CIPHERTEXT)
        for label, expected in FIPS_B_STATES.items():
            assert hexstr(states[label][0]) == expected, label

    def test_matches_scalar_rounds_for_every_label(self):
        plaintexts = [FIPS_C_PLAINTEXT, FIPS_B_PLAINTEXT]
        key = unhex(FIPS_C_VECTORS[0][0])
        states = encrypt_states_batch(key, plaintexts)
        cipher = AES(key)
        for index, plaintext in enumerate(plaintexts):
            trace = cipher.encrypt_with_trace(plaintext)
            for label, state in trace.states.items():
                if label == "round0:input":
                    continue
                assert np.array_equal(states[label][index],
                                      np.asarray(state, dtype=np.uint8)), label

    def test_appendix_c_ciphertext_via_batch(self):
        key = unhex(FIPS_C_VECTORS[0][0])
        states = encrypt_states_batch(key, [FIPS_C_PLAINTEXT])
        assert hexstr(states["round10:addkey"][0]) == FIPS_C_VECTORS[0][1]


class TestDesKnownAnswers:
    @pytest.mark.parametrize("key_hex,plain_hex,cipher_hex", DES_VECTORS)
    def test_encrypt(self, key_hex, plain_hex, cipher_hex):
        cipher = DES(unhex(key_hex))
        assert hexstr(cipher.encrypt_block(unhex(plain_hex))) == cipher_hex

    @pytest.mark.parametrize("key_hex,plain_hex,cipher_hex", DES_VECTORS)
    def test_decrypt(self, key_hex, plain_hex, cipher_hex):
        assert hexstr(des_decrypt(unhex(cipher_hex), unhex(key_hex))) == plain_hex
