"""Tests of the DES reference implementation and its DPA accessors."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import (
    DES,
    DESError,
    des_decrypt,
    des_encrypt,
    expanded_plaintext_chunk,
    key_schedule,
    round_key_sbox_chunk,
    sbox_lookup,
)
from repro.crypto.des import bits_to_bytes, bytes_to_bits, permute

CLASSIC_KEY = [0x13, 0x34, 0x57, 0x79, 0x9B, 0xBC, 0xDF, 0xF1]
CLASSIC_PLAINTEXT = [0x01, 0x23, 0x45, 0x67, 0x89, 0xAB, 0xCD, 0xEF]
CLASSIC_CIPHERTEXT = [0x85, 0xE8, 0x13, 0x54, 0x0F, 0x0A, 0xB4, 0x05]


class TestBitHelpers:
    def test_bits_roundtrip(self):
        data = [0xDE, 0xAD, 0xBE, 0xEF]
        assert bits_to_bytes(bytes_to_bits(data)) == data

    def test_bits_msb_first(self):
        assert bytes_to_bits([0x80]) == [1, 0, 0, 0, 0, 0, 0, 0]

    def test_bad_width(self):
        with pytest.raises(DESError):
            bits_to_bytes([1, 0, 1])

    def test_permute_is_selection(self):
        assert permute([10, 20, 30], [3, 1]) == [30, 10]


class TestKeySchedule:
    def test_sixteen_round_keys_of_48_bits(self):
        keys = key_schedule(CLASSIC_KEY)
        assert len(keys) == 16
        assert all(len(k) == 48 for k in keys)

    def test_known_first_round_key(self):
        """The classical worked example: K1 = 000110 110000 001011 101111
        111111 000111 000001 110010."""
        expected = [int(b) for b in
                    "000110110000001011101111111111000111000001110010"]
        assert key_schedule(CLASSIC_KEY)[0] == expected

    def test_sbox_chunk_extraction(self):
        key1 = key_schedule(CLASSIC_KEY)[0]
        assert round_key_sbox_chunk(key1, 0) == int("000110", 2)
        assert round_key_sbox_chunk(key1, 7) == int("110010", 2)

    def test_bad_key_length(self):
        with pytest.raises(DESError):
            key_schedule([0] * 7)


class TestSboxes:
    def test_sbox1_corner_values(self):
        assert sbox_lookup(0, 0b000000) == 14
        assert sbox_lookup(0, 0b111111) == 13

    def test_sbox_row_column_convention(self):
        # Input 0b011011: row = 0b01 = 1, column = 0b1101 = 13 -> S1 value 5.
        assert sbox_lookup(0, 0b011011) == 5

    def test_out_of_range(self):
        with pytest.raises(DESError):
            sbox_lookup(8, 0)
        with pytest.raises(DESError):
            sbox_lookup(0, 64)


class TestCipher:
    def test_classic_vector(self):
        assert des_encrypt(CLASSIC_PLAINTEXT, CLASSIC_KEY) == CLASSIC_CIPHERTEXT

    def test_decrypt_inverts(self):
        assert des_decrypt(CLASSIC_CIPHERTEXT, CLASSIC_KEY) == CLASSIC_PLAINTEXT

    def test_bad_block_length(self):
        with pytest.raises(DESError):
            des_encrypt([0] * 7, CLASSIC_KEY)

    @given(st.lists(st.integers(0, 255), min_size=8, max_size=8),
           st.lists(st.integers(0, 255), min_size=8, max_size=8))
    @settings(max_examples=20, deadline=None)
    def test_roundtrip_property(self, plaintext, key):
        cipher = DES(key)
        assert cipher.decrypt_block(cipher.encrypt_block(plaintext)) == plaintext


class TestDpaAccessors:
    def test_expanded_chunk_in_range(self):
        for sbox_index in range(8):
            chunk = expanded_plaintext_chunk(CLASSIC_PLAINTEXT, sbox_index)
            assert 0 <= chunk < 64

    def test_first_round_sbox_output_consistency(self):
        """D(C, P6, K0) of Section IV computed two ways must agree."""
        cipher = DES(CLASSIC_KEY)
        chunk = expanded_plaintext_chunk(CLASSIC_PLAINTEXT, 0)
        key_chunk = round_key_sbox_chunk(cipher.round_keys[0], 0)
        assert cipher.first_round_sbox_output(CLASSIC_PLAINTEXT, 0) == \
            sbox_lookup(0, chunk ^ key_chunk)

    def test_first_round_sbox_output_range(self):
        cipher = DES(CLASSIC_KEY)
        for sbox_index in range(8):
            value = cipher.first_round_sbox_output(CLASSIC_PLAINTEXT, sbox_index)
            assert 0 <= value < 16
