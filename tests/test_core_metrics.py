"""Tests of the DPA-resistance and design-cost metrics."""

import numpy as np
import pytest

from repro.core import (
    AreaReport,
    KeyRecoveryCurve,
    KeyRecoveryPoint,
    area_overhead,
    find_peaks,
    peak_to_rms_ratio,
    signal_to_noise_ratio,
)
from repro.electrical import Waveform


class TestPeaks:
    def test_find_single_peak(self):
        samples = np.zeros(100)
        samples[42] = 5.0
        peaks = find_peaks(Waveform(samples, 1e-12, 0.0))
        assert len(peaks) == 1
        assert peaks[0].time == pytest.approx(42e-12)
        assert peaks[0].magnitude == pytest.approx(5.0)

    def test_find_two_peaks_of_opposite_sign(self):
        samples = np.zeros(300)
        samples[50] = 2.0
        samples[200] = -1.8
        peaks = find_peaks(Waveform(samples, 1e-12, 0.0))
        assert len(peaks) == 2
        assert peaks[1].value < 0

    def test_close_peaks_merge(self):
        samples = np.zeros(100)
        samples[50] = 2.0
        samples[53] = 1.9
        peaks = find_peaks(Waveform(samples, 1e-12, 0.0), min_separation_s=10e-12)
        assert len(peaks) == 1

    def test_flat_waveform_has_no_peaks(self):
        assert find_peaks(Waveform(np.zeros(50), 1e-12, 0.0)) == []

    def test_peak_to_rms_ratio(self):
        samples = np.zeros(100)
        samples[10] = 10.0
        spiky = peak_to_rms_ratio(Waveform(samples, 1e-12, 0.0))
        flat = peak_to_rms_ratio(Waveform(np.ones(100), 1e-12, 0.0))
        assert spiky > flat
        assert flat == pytest.approx(1.0)
        assert peak_to_rms_ratio(Waveform(np.zeros(10), 1e-12, 0.0)) == 0.0

    def test_signal_to_noise_ratio(self):
        samples = np.zeros(10)
        samples[3] = 4.0
        waveform = Waveform(samples, 1e-12, 0.0)
        assert signal_to_noise_ratio(waveform, 2.0) == pytest.approx(2.0)
        assert signal_to_noise_ratio(waveform, 0.0) == float("inf")


class TestArea:
    def test_area_overhead_matches_paper_style(self):
        """The paper reports the hierarchical AES ~20% larger than the flat one."""
        flat = AreaReport(design="AES_v2", cell_area_um2=80.0, die_area_um2=100.0)
        hier = AreaReport(design="AES_v1", cell_area_um2=80.0, die_area_um2=120.0)
        assert area_overhead(flat, hier) == pytest.approx(0.20)

    def test_utilization(self):
        report = AreaReport(design="x", cell_area_um2=75.0, die_area_um2=100.0)
        assert report.utilization == pytest.approx(0.75)
        empty = AreaReport(design="x", cell_area_um2=0.0, die_area_um2=0.0)
        assert empty.utilization == 0.0

    def test_zero_reference_rejected(self):
        bad = AreaReport(design="x", cell_area_um2=0.0, die_area_um2=0.0)
        good = AreaReport(design="y", cell_area_um2=1.0, die_area_um2=2.0)
        with pytest.raises(ValueError):
            area_overhead(bad, good)


class TestKeyRecoveryCurve:
    def _curve(self, ranks):
        curve = KeyRecoveryCurve(selection_name="s", correct_guess=0x42)
        for index, rank in enumerate(ranks):
            curve.points.append(KeyRecoveryPoint(
                trace_count=(index + 1) * 100,
                rank_of_correct=rank,
                best_guess=0x42 if rank == 1 else 0x00,
                correct_peak=1.0,
                best_wrong_peak=0.5,
            ))
        return curve

    def test_messages_to_disclosure_requires_stability(self):
        curve = self._curve([5, 1, 3, 1, 1])
        # Rank drops back after the first success; disclosure starts at 400.
        assert curve.messages_to_disclosure() == 400

    def test_never_disclosed(self):
        curve = self._curve([7, 5, 3])
        assert curve.messages_to_disclosure() is None
        assert curve.final_rank() == 3

    def test_table_rendering(self):
        curve = self._curve([2, 1])
        text = curve.as_table()
        assert "0x42" in text and "200" in text
