"""Tests of the project-specific AST lint (``tools/lint_invariants.py``)."""

import sys
import textwrap
from pathlib import Path

import pytest

TOOLS = Path(__file__).resolve().parent.parent / "tools"
sys.path.insert(0, str(TOOLS))

import lint_invariants  # noqa: E402


def _check(source: str, path: str):
    return lint_invariants.check_source(textwrap.dedent(source), path)


class TestCapWrites:
    def test_direct_write_without_touch_fires(self):
        problems = _check(
            """
            def repair(netlist):
                netlist.net("x").dummy_cap_ff = 4.0
            """, "src/repro/harden/passes.py")
        assert len(problems) == 1
        assert "dummy_cap_ff" in problems[0]
        assert "touch_caps" in problems[0]

    def test_bulk_write_with_touch_is_accepted(self):
        problems = _check(
            """
            def extract(netlist, caps):
                for net, cap in caps.items():
                    netlist.net(net).routing_cap_ff = cap
                netlist.touch_caps()
            """, "src/repro/pnr/extraction.py")
        assert problems == []

    def test_touch_in_another_function_does_not_count(self):
        problems = _check(
            """
            def write(netlist):
                netlist.net("x").routing_cap_ff = 1.0

            def touch(netlist):
                netlist.touch_caps()
            """, "src/repro/pnr/extraction.py")
        assert len(problems) == 1
        assert ":3:" in problems[0]

    def test_augmented_write_fires(self):
        problems = _check(
            """
            def bump(net):
                net.dummy_cap_ff += 0.5
            """, "src/repro/electrical/capacitance.py")
        assert len(problems) == 1

    def test_netlist_module_is_allowlisted(self):
        problems = _check(
            """
            def set_routing_cap(self, name, cap):
                self.net(name).routing_cap_ff = cap
            """, "src/repro/circuits/netlist.py")
        assert problems == []

    def test_versioned_api_calls_are_clean(self):
        problems = _check(
            """
            def balance(netlist):
                netlist.add_dummy_load("x", 2.0)
                netlist.set_routing_cap("y", 1.0)
            """, "src/repro/harden/passes.py")
        assert problems == []

    def test_nested_function_scopes_are_independent(self):
        # The inner function writes, the outer one touches: not the same
        # scope, so the write is still a violation.
        problems = _check(
            """
            def outer(netlist):
                def inner():
                    netlist.net("x").dummy_cap_ff = 1.0
                inner()
                netlist.touch_caps()
            """, "src/repro/harden/passes.py")
        assert len(problems) == 1


class TestSpanGates:
    HOT = "src/repro/pnr/anneal.py"

    def test_ungated_span_in_loop_fires(self):
        problems = _check(
            """
            def anneal(telemetry):
                for step in range(1000):
                    with telemetry.span("move"):
                        pass
            """, self.HOT)
        assert len(problems) == 1
        assert ".enabled gate" in problems[0]

    def test_conditional_expression_gate_is_accepted(self):
        problems = _check(
            """
            def anneal(telemetry):
                for step in range(1000):
                    with (telemetry.span("move") if telemetry.enabled
                          else _NO_SPAN):
                        pass
            """, self.HOT)
        assert problems == []

    def test_enclosing_if_gate_is_accepted(self):
        problems = _check(
            """
            def anneal(telemetry):
                while True:
                    if telemetry.enabled:
                        with telemetry.span("move"):
                            pass
            """, self.HOT)
        assert problems == []

    def test_gate_outside_the_loop_does_not_count(self):
        problems = _check(
            """
            def anneal(telemetry):
                if telemetry.enabled:
                    for step in range(1000):
                        with telemetry.span("move"):
                            pass
            """, self.HOT)
        assert len(problems) == 1

    def test_span_outside_loops_needs_no_gate(self):
        problems = _check(
            """
            def anneal(telemetry):
                with telemetry.span("anneal"):
                    for step in range(1000):
                        pass
            """, self.HOT)
        assert problems == []

    def test_cold_modules_are_not_checked(self):
        problems = _check(
            """
            def run(telemetry):
                for item in range(10):
                    with telemetry.span("item"):
                        pass
            """, "src/repro/core/flow.py")
        assert problems == []


class TestDriver:
    def test_real_tree_is_clean(self, capsys):
        root = TOOLS.parent / "src"
        assert lint_invariants.main([str(root)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_violating_file_exits_nonzero(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(n):\n    n.dummy_cap_ff = 1.0\n")
        assert lint_invariants.main([str(bad)]) == 1
        out = capsys.readouterr().out
        assert "1 violation(s)" in out

    def test_syntax_error_is_a_loud_failure(self, tmp_path):
        broken = tmp_path / "broken.py"
        broken.write_text("def f(:\n")
        with pytest.raises(SyntaxError):
            lint_invariants.main([str(broken)])
