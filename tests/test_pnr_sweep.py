"""Tests of the placer knob-sweep harness (repro.pnr.sweep)."""

import pytest

from repro.circuits import build_xor_bank
from repro.pnr import AnnealingSchedule, PlacementSweep, SweepPoint
from repro.pnr.placement import PlacementError


def _factory():
    return build_xor_bank(4, "w").netlist


def _small_sweep(**kwargs):
    options = dict(
        netlist_factory=_factory,
        flow="flat",
        seed=3,
        effort=0.3,
        cooling=(0.7, 0.8),
        moves_per_cell=(5.0,),
        security_weight=(0.0, 0.5),
    )
    options.update(kwargs)
    return PlacementSweep(**options)


class TestGrid:
    def test_points_in_row_major_product_order(self):
        sweep = _small_sweep()
        points = sweep.points()
        assert len(points) == 4
        assert points[0] == SweepPoint(0.3, 0.7, 5.0, 0.0)
        assert points[1] == SweepPoint(0.3, 0.7, 5.0, 0.5)
        assert points[2] == SweepPoint(0.3, 0.8, 5.0, 0.0)
        assert points[3] == SweepPoint(0.3, 0.8, 5.0, 0.5)

    def test_point_schedule_applies_knobs(self):
        base = AnnealingSchedule()
        point = SweepPoint(0.25, 0.9, 3.0, 1.5)
        schedule = point.schedule(base)
        assert schedule.initial_acceptance == 0.25
        assert schedule.cooling == 0.9
        assert schedule.moves_per_cell == 3.0
        assert schedule.security_weight == 1.5
        # Untouched knobs keep their base values.
        assert schedule.batch_moves == base.batch_moves

    def test_unknown_flow_raises(self):
        sweep = _small_sweep(flow="diagonal")
        with pytest.raises(PlacementError):
            sweep.run()


class TestDeterminism:
    @pytest.fixture(scope="class")
    def serial_result(self):
        return _small_sweep().run(workers=1)

    def test_rows_in_grid_order(self, serial_result):
        assert [row.point for row in serial_result.rows] == \
            _small_sweep().points()

    def test_serial_rerun_is_identical(self, serial_result):
        again = _small_sweep().run(workers=1)
        assert again.as_table() == serial_result.as_table()
        assert again.rows == serial_result.rows

    def test_sharded_is_byte_identical_to_serial(self, serial_result):
        sharded = _small_sweep().run(workers=3)
        assert sharded.as_table() == serial_result.as_table()
        assert sharded.rows == serial_result.rows

    def test_table_mentions_design_and_flow(self, serial_result):
        table = serial_result.as_table()
        assert "w [flat]" in table
        assert "max dA" in table

    def test_best_defaults_to_wirelength(self, serial_result):
        best = serial_result.best()
        assert best.wirelength_um == min(
            row.wirelength_um for row in serial_result.rows)

    def test_best_with_custom_key(self, serial_result):
        best = serial_result.best(key=lambda row: row.max_dissymmetry)
        assert best.max_dissymmetry == min(
            row.max_dissymmetry for row in serial_result.rows)

    def test_empty_sweep_best_raises(self):
        from repro.pnr import SweepResult

        with pytest.raises(PlacementError):
            SweepResult(flow="flat", design="w", rows=[]).best()


class TestHierarchicalSweep:
    def test_hierarchical_flow_points_run(self):
        sweep = _small_sweep(flow="hierarchical", cooling=(0.75,),
                             security_weight=(0.0,))
        result = sweep.run()
        assert len(result.rows) == 1
        assert result.flow == "hierarchical"
        assert result.rows[0].wirelength_um > 0
