"""Tests of plaintext/key generation and bit utilities."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import (
    PlaintextGenerator,
    bit_of,
    bytes_to_int,
    hamming_distance,
    hamming_weight,
    int_to_bytes,
    random_key,
)


class TestBitHelpers:
    def test_hamming_weight(self):
        assert hamming_weight(0) == 0
        assert hamming_weight(0xFF) == 8
        assert hamming_weight(0b1010) == 2
        with pytest.raises(ValueError):
            hamming_weight(-1)

    def test_hamming_distance(self):
        assert hamming_distance(0b1100, 0b1010) == 2
        assert hamming_distance(7, 7) == 0

    def test_bit_of(self):
        assert bit_of(0b100, 2) == 1
        assert bit_of(0b100, 0) == 0
        with pytest.raises(ValueError):
            bit_of(3, -1)

    def test_bytes_int_roundtrip(self):
        data = [0x12, 0x34, 0x56]
        assert int_to_bytes(bytes_to_int(data), 3) == data
        with pytest.raises(ValueError):
            int_to_bytes(256, 1)
        with pytest.raises(ValueError):
            bytes_to_int([300])

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, value):
        assert bytes_to_int(int_to_bytes(value, 8)) == value


class TestGenerators:
    def test_plaintext_shape(self):
        generator = PlaintextGenerator(block_size=16, seed=1)
        block = generator.next()
        assert len(block) == 16
        assert all(0 <= b <= 255 for b in block)

    def test_batch(self):
        generator = PlaintextGenerator(block_size=8, seed=1)
        batch = generator.batch(5)
        assert len(batch) == 5
        assert all(len(b) == 8 for b in batch)

    def test_reproducible(self):
        a = PlaintextGenerator(seed=42).batch(3)
        b = PlaintextGenerator(seed=42).batch(3)
        assert a == b

    def test_different_seeds_differ(self):
        a = PlaintextGenerator(seed=1).batch(3)
        b = PlaintextGenerator(seed=2).batch(3)
        assert a != b

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            PlaintextGenerator(block_size=0)
        with pytest.raises(ValueError):
            PlaintextGenerator(seed=1).batch(-1)

    def test_random_key(self):
        key = random_key(16, seed=9)
        assert len(key) == 16
        assert random_key(16, seed=9) == key
