"""Simulator-backed trace generation: cross-validation and key recovery.

Covers the three contracts of :mod:`repro.asyncaes.simtrace`:

* the XOR reference design, simulated gate by gate, leaks through its rail
  capacitances exactly as equation (12) predicts — a ``dpa_attack`` over the
  simulated traces recovers the key byte end to end;
* the AES transfer-schedule replay is sample-identical to the analytic
  charge-model generator on a placed reduced-width datapath (the
  cross-validation anchoring both trace paths);
* the campaign's trace-source grid dimension exposes both generators.
"""

import random

import numpy as np
import pytest

from repro.asyncaes import (
    AesArchitecture,
    AesNetlistGenerator,
    AesPowerTraceGenerator,
    AesSimulatorTraceGenerator,
    SimTraceConfig,
    TraceGenerationError,
    xor_bank_trace_generator,
)
from repro.circuits import build_xor_bank
from repro.core import AttackCampaign
from repro.core.dpa import DPAError, dpa_attack, dpa_attack_reference
from repro.core.selection import (
    AesAddRoundKeySelection,
    AesSboxSelection,
    HammingWeightSelection,
)
from repro.crypto import random_key
from repro.crypto.keys import PlaintextGenerator
from repro.electrical.noise import GaussianNoise
from repro.pnr import run_flat_flow

KEY_BYTE = 0x5A


def _plaintexts(count, seed=7):
    rng = random.Random(seed)
    return [[rng.randrange(256)] + [0] * 15 for _ in range(count)]


def _unbalanced_bank(width=8, name="ref", extra_ff=24.0):
    bank = build_xor_bank(width, name)
    for block in bank.bits:
        block.set_level_cap(3, 2, extra_ff)  # rail-1 output net made heavier
    return bank


@pytest.fixture(scope="module")
def xor_traces():
    generator = xor_bank_trace_generator(_unbalanced_bank(), KEY_BYTE)
    return generator.trace_batch(_plaintexts(128))


class TestXorBankTraces:
    def test_matrix_contract(self, xor_traces):
        matrix = xor_traces.matrix()
        assert matrix.shape[0] == 128
        assert matrix.shape[1] > 1
        assert np.all(matrix >= 0)
        assert matrix.max() > 0

    def test_balanced_bank_traces_are_data_independent(self):
        """The constant-transition-count property: with equal rail caps every
        computation deposits the same charges in the same bins."""
        generator = xor_bank_trace_generator(build_xor_bank(8, "bal"), KEY_BYTE)
        matrix = generator.trace_batch(_plaintexts(12)).matrix()
        assert np.allclose(matrix, matrix[0])

    def test_unbalanced_bank_traces_depend_on_data(self, xor_traces):
        matrix = xor_traces.matrix()
        assert not np.allclose(matrix, matrix[0])

    def test_total_charge_tracks_hamming_weight(self, xor_traces):
        """The only data dependence is the rail-capacitance mismatch, so the
        per-trace energy is affine in HW(plaintext ⊕ key) (equation (12))."""
        matrix = xor_traces.matrix()
        energies = matrix.sum(axis=1)
        weights = np.array([bin(p[0] ^ KEY_BYTE).count("1")
                            for p in xor_traces.plaintexts()])
        correlation = np.corrcoef(energies, weights)[0, 1]
        assert correlation > 0.99

    def test_dpa_recovers_key_end_to_end(self, xor_traces):
        """Acceptance: a simulator-backed TraceSet flows through dpa_attack
        and recovers the key on the XOR reference design."""
        selection = HammingWeightSelection(AesAddRoundKeySelection(byte_index=0))
        attack = dpa_attack(xor_traces, selection, polarity="negative")
        assert attack.best_guess == KEY_BYTE
        assert attack.rank_of(KEY_BYTE) == 1
        assert attack.discrimination_ratio(KEY_BYTE) > 1.0

    def test_reference_attack_agrees(self, xor_traces):
        selection = HammingWeightSelection(AesAddRoundKeySelection(byte_index=0))
        fast = dpa_attack(xor_traces, selection, polarity="negative")
        slow = dpa_attack_reference(xor_traces, selection, polarity="negative",
                                    guesses=[KEY_BYTE, KEY_BYTE ^ 0xFF, 0x00])
        assert slow.result_for(KEY_BYTE).peak == pytest.approx(
            fast.result_for(KEY_BYTE).peak)
        assert slow.best_guess == KEY_BYTE

    def test_balanced_bank_shows_no_bias(self):
        generator = xor_bank_trace_generator(build_xor_bank(8, "bal"), KEY_BYTE)
        traces = generator.trace_batch(_plaintexts(64))
        selection = HammingWeightSelection(AesAddRoundKeySelection(byte_index=0))
        attack = dpa_attack(traces, selection)
        assert attack.best_peak < 1e-12

    def test_trace_chunks_match_batch(self):
        generator = xor_bank_trace_generator(_unbalanced_bank(4, "c"), KEY_BYTE,
                                             noise=GaussianNoise(sigma=1e-4, seed=3))
        plaintexts = _plaintexts(20, seed=9)
        full = generator.trace_batch(plaintexts).matrix()
        for chunk_size in (1, 7, 20, 64):
            chunks = list(generator.trace_chunks(plaintexts, chunk_size))
            stacked = np.vstack([c.matrix() for c in chunks])
            assert np.allclose(stacked, full)

    def test_consecutive_batches_share_geometry(self):
        """The first batch pins the sample count, so later batches stay
        concatenable (manual chunking via noise_start_index)."""
        generator = xor_bank_trace_generator(_unbalanced_bank(4, "g"), KEY_BYTE)
        first = generator.trace_batch(_plaintexts(5, seed=1))
        second = generator.trace_batch(_plaintexts(5, seed=2),
                                       noise_start_index=5)
        assert first.matrix().shape[1] == second.matrix().shape[1]

    def test_fixed_duration_too_short_raises(self):
        generator = xor_bank_trace_generator(
            _unbalanced_bank(2, "s"), KEY_BYTE,
            config=SimTraceConfig(duration_s=50e-12))
        with pytest.raises(TraceGenerationError):
            generator.trace_batch(_plaintexts(2))


class TestPolarityOption:
    def test_abs_matches_default(self, xor_traces):
        selection = HammingWeightSelection(AesAddRoundKeySelection(byte_index=0))
        default = dpa_attack(xor_traces, selection)
        explicit = dpa_attack(xor_traces, selection, polarity="abs")
        assert [r.peak for r in default.results] == [r.peak for r in explicit.results]

    def test_polarized_peaks_stay_non_negative(self, xor_traces):
        """Wrong-side excursions are clipped, so the non-negative peak
        contract of GuessResult (ranking, discrimination ratio) holds."""
        selection = HammingWeightSelection(AesAddRoundKeySelection(byte_index=0))
        for polarity in ("negative", "positive"):
            attack = dpa_attack(xor_traces, selection, polarity=polarity)
            assert all(r.peak >= 0.0 for r in attack.results)

    def test_unknown_polarity_rejected(self, xor_traces):
        selection = HammingWeightSelection(AesAddRoundKeySelection(byte_index=0))
        with pytest.raises(DPAError):
            dpa_attack(xor_traces, selection, polarity="sideways")


@pytest.fixture(scope="module")
def placed_reduced_aes():
    key = random_key(16, seed=21)
    architecture = AesArchitecture(word_width=8, detail=0.1)
    netlist = AesNetlistGenerator(architecture, name="aes_rw").build()
    run_flat_flow(netlist, seed=5, effort=0.3)
    return key, architecture, netlist


class TestAesReplayCrossValidation:
    def test_replay_matches_analytic_generator(self, placed_reduced_aes):
        """The committed rail transitions of the schedule replay deposit
        exactly the charges the analytic model scatters."""
        key, architecture, netlist = placed_reduced_aes
        plaintexts = PlaintextGenerator(seed=3).batch(8)
        analytic = AesPowerTraceGenerator(netlist, key, architecture=architecture)
        simulated = AesSimulatorTraceGenerator(netlist, key,
                                               architecture=architecture)
        a = analytic.trace_batch(plaintexts).matrix()
        s = simulated.trace_batch(plaintexts).matrix()
        assert a.shape == s.shape
        assert np.allclose(a, s)

    def test_replay_matches_analytic_with_noise(self, placed_reduced_aes):
        """Both generators draw the same per-trace-index noise stream."""
        key, architecture, netlist = placed_reduced_aes
        plaintexts = PlaintextGenerator(seed=5).batch(4)
        analytic = AesPowerTraceGenerator(
            netlist, key, architecture=architecture,
            noise=GaussianNoise(sigma=5e-4, seed=11))
        simulated = AesSimulatorTraceGenerator(
            netlist, key, architecture=architecture,
            noise=GaussianNoise(sigma=5e-4, seed=11))
        assert np.allclose(analytic.trace_batch(plaintexts).matrix(),
                           simulated.trace_batch(plaintexts).matrix())

    def test_replay_chunks_match_batch(self, placed_reduced_aes):
        key, architecture, netlist = placed_reduced_aes
        plaintexts = PlaintextGenerator(seed=6).batch(6)
        simulated = AesSimulatorTraceGenerator(netlist, key,
                                               architecture=architecture)
        full = simulated.trace_batch(plaintexts).matrix()
        stacked = np.vstack([c.matrix() for c in
                             simulated.trace_chunks(plaintexts, 4)])
        assert np.allclose(stacked, full)

    def test_propagation_adds_interface_churn(self, placed_reduced_aes):
        """With gate propagation the netlist's interface cells react to the
        rail events — activity the idealized model leaves out."""
        key, architecture, netlist = placed_reduced_aes
        plaintexts = PlaintextGenerator(seed=7).batch(2)
        replay = AesSimulatorTraceGenerator(netlist, key,
                                            architecture=architecture)
        full = AesSimulatorTraceGenerator(netlist, key,
                                          architecture=architecture,
                                          propagate=True,
                                          include_internal=True)
        r = replay.trace_batch(plaintexts).matrix()
        f = full.trace_batch(plaintexts).matrix()
        assert f.shape == r.shape
        assert f.sum() > r.sum()
        # Peak slots of the replayed rails stay dominant in the same bins.
        assert r.max() > 0

    def test_include_internal_needs_propagation(self, placed_reduced_aes):
        key, architecture, netlist = placed_reduced_aes
        with pytest.raises(TraceGenerationError):
            AesSimulatorTraceGenerator(netlist, key, architecture=architecture,
                                       include_internal=True)

    def test_wrong_architecture_rejected(self, placed_reduced_aes):
        key, _, netlist = placed_reduced_aes
        other = AesArchitecture(word_width=16, detail=0.1)
        with pytest.raises(TraceGenerationError):
            AesSimulatorTraceGenerator(netlist, key, architecture=other)


class TestCampaignTraceSource:
    def test_simulator_source_rows_match_analytic(self, placed_reduced_aes):
        key, architecture, netlist = placed_reduced_aes
        campaign = AttackCampaign(key, architecture=architecture)
        campaign.add_design("analytic", netlist)
        campaign.add_design("simulated", netlist, source="simulator")
        campaign.add_selection(AesSboxSelection(byte_index=0, bit_index=3))
        result = campaign.run(trace_count=40, seed=9, compute_disclosure=False)
        analytic_row = result.row("analytic")
        simulated_row = result.row("simulated")
        assert simulated_row.best_guess == analytic_row.best_guess
        assert simulated_row.best_peak == pytest.approx(analytic_row.best_peak)
        assert simulated_row.rank_of_correct == analytic_row.rank_of_correct

    def test_streaming_simulator_source_matches(self, placed_reduced_aes):
        key, architecture, netlist = placed_reduced_aes
        def build():
            campaign = AttackCampaign(key, architecture=architecture)
            campaign.add_design("simulated", netlist, source="simulator")
            campaign.add_selection(AesSboxSelection(byte_index=0, bit_index=3))
            return campaign
        in_memory = build().run(trace_count=24, seed=4, compute_disclosure=False)
        streamed = build().run(trace_count=24, seed=4, compute_disclosure=False,
                               streaming=True, chunk_size=10)
        a, b = in_memory.row("simulated"), streamed.row("simulated")
        assert a.best_guess == b.best_guess
        assert a.best_peak == pytest.approx(b.best_peak)

    def test_unknown_source_rejected(self, placed_reduced_aes):
        key, architecture, netlist = placed_reduced_aes
        campaign = AttackCampaign(key, architecture=architecture)
        with pytest.raises(ValueError):
            campaign.add_design("bad", netlist, source="spice")

    def test_source_rejected_for_custom_trace_source(self):
        campaign = AttackCampaign([0] * 16)
        with pytest.raises(ValueError):
            campaign.add_design("bad", trace_source=lambda p, n: None,
                                source="simulator")
