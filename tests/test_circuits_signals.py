"""Tests of logic values, transitions and trace records."""

import pytest

from repro.circuits import Logic, TraceRecord, Transition, TransitionKind


class TestLogic:
    def test_invert(self):
        assert ~Logic.HIGH is Logic.LOW
        assert ~Logic.LOW is Logic.HIGH

    def test_predicates(self):
        assert Logic.HIGH.is_high and not Logic.HIGH.is_low
        assert Logic.LOW.is_low and not Logic.LOW.is_high

    def test_int_values(self):
        assert int(Logic.LOW) == 0
        assert int(Logic.HIGH) == 1


class TestTransitionKind:
    def test_rising(self):
        assert TransitionKind.from_values(Logic.LOW, Logic.HIGH) is TransitionKind.RISING

    def test_falling(self):
        assert TransitionKind.from_values(Logic.HIGH, Logic.LOW) is TransitionKind.FALLING

    def test_no_transition_raises(self):
        with pytest.raises(ValueError):
            TransitionKind.from_values(Logic.HIGH, Logic.HIGH)


def _transition(net, time, rising=True, cause=None, level=0):
    return Transition(
        net=net,
        time=time,
        value=Logic.HIGH if rising else Logic.LOW,
        kind=TransitionKind.RISING if rising else TransitionKind.FALLING,
        cause=cause,
        level=level,
    )


class TestTraceRecord:
    def test_add_updates_end_time(self):
        trace = TraceRecord()
        trace.add(_transition("a", 1e-9))
        trace.add(_transition("b", 3e-9))
        trace.add(_transition("c", 2e-9))
        assert trace.end_time == pytest.approx(3e-9)
        assert len(trace) == 3

    def test_transitions_for_filters_by_net(self):
        trace = TraceRecord()
        trace.add(_transition("a", 1e-9))
        trace.add(_transition("b", 2e-9))
        trace.add(_transition("a", 3e-9, rising=False))
        assert len(trace.transitions_for("a")) == 2
        assert trace.transitions_for("missing") == []

    def test_count_by_kind(self):
        trace = TraceRecord()
        trace.add(_transition("a", 1e-9, rising=True))
        trace.add(_transition("a", 2e-9, rising=False))
        trace.add(_transition("b", 3e-9, rising=True))
        assert trace.count() == 3
        assert trace.count(TransitionKind.RISING) == 2
        assert trace.count(TransitionKind.FALLING) == 1

    def test_nets_toggled(self):
        trace = TraceRecord()
        trace.add(_transition("x", 1e-9))
        trace.add(_transition("y", 2e-9))
        assert trace.nets_toggled() == {"x", "y"}

    def test_window(self):
        trace = TraceRecord()
        for index in range(5):
            trace.add(_transition("n", index * 1e-9))
        window = trace.window(1e-9, 3e-9)
        assert len(window) == 2
        assert all(1e-9 <= t.time < 3e-9 for t in window)

    def test_iteration(self):
        trace = TraceRecord()
        trace.add(_transition("a", 1e-9))
        assert [t.net for t in trace] == ["a"]

    def test_transition_properties(self):
        rising = _transition("a", 0.0, rising=True)
        falling = _transition("a", 0.0, rising=False)
        assert rising.is_rising and not rising.is_falling
        assert falling.is_falling and not falling.is_rising
