"""Tests of the formal power/current model (equations (1)-(6))."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import build_dual_rail_xor
from repro.core import (
    FormalCurrentModel,
    block_dynamic_power,
    block_power_from_netlist,
    gate_dynamic_power,
    qdi_gate_dynamic_power,
    xor_current_decomposition,
)
from repro.electrical import HCMOS9_LIKE


class TestEquations1To3:
    def test_equation_1_value(self):
        """Pd = eta f C Vdd^2 with C in fF."""
        power = gate_dynamic_power(0.5, 1e6, 10.0, 1.2)
        assert power == pytest.approx(0.5 * 1e6 * 10e-15 * 1.44)

    def test_equation_2_uses_ack_frequency(self):
        assert qdi_gate_dynamic_power(1.0, 2e6, 8.0, 1.2) == \
            pytest.approx(gate_dynamic_power(1.0, 2e6, 8.0, 1.2))

    def test_equation_3_sums_transitions(self):
        caps = [8.0, 8.0, 8.0, 8.0]
        total = block_dynamic_power(caps, 1e6, 1.2)
        single = qdi_gate_dynamic_power(1.0, 1e6, 8.0, 1.2)
        assert total == pytest.approx(4 * single)

    def test_negative_parameters_rejected(self):
        with pytest.raises(ValueError):
            gate_dynamic_power(-1.0, 1e6, 8.0, 1.2)

    def test_block_power_from_netlist(self):
        xor = build_dual_rail_xor("x")
        nets = [xor.net_at(level, 1) for level in range(1, 5)]
        power = block_power_from_netlist(xor.netlist, nets, 1e6)
        assert power > 0

    @given(st.floats(min_value=0.1, max_value=10.0))
    @settings(max_examples=25, deadline=None)
    def test_power_scales_linearly_with_capacitance(self, factor):
        base = gate_dynamic_power(1.0, 1e6, 10.0, 1.2)
        scaled = gate_dynamic_power(1.0, 1e6, 10.0 * factor, 1.2)
        assert scaled == pytest.approx(base * factor, rel=1e-9)


class TestFormalCurrentModel:
    def test_nt_nc_nij_match_paper(self):
        """Section III: Nt = Nc = 4 and Nij = 1 for the dual-rail XOR."""
        model = FormalCurrentModel.from_block(build_dual_rail_xor("x"))
        assert model.nc == 4
        for rail_value in (0, 1):
            assert model.nt(rail_value) == 4
            assert model.nij(rail_value) == {1: 1, 2: 1, 3: 1, 4: 1}

    def test_equation_6_decomposition_labels(self):
        """Equation (10)/(11): rail-0 computations involve I11, I12, I21, I31, I41."""
        labels = [label for label, _ in xor_current_decomposition(build_dual_rail_xor("x"), 0)]
        assert labels == ["I11", "I12", "I21", "I31", "I41"]

    def test_level1_terms_have_half_weight(self):
        model = FormalCurrentModel.from_block(build_dual_rail_xor("x"))
        level1 = [t for t in model.paths[0].terms if t.level == 1]
        assert len(level1) == 2
        assert all(t.weight == pytest.approx(0.5) for t in level1)

    def test_profile_charge_matches_expected(self):
        """The integral of the predicted profile equals the expected charge."""
        xor = build_dual_rail_xor("x")
        model = FormalCurrentModel.from_block(xor)
        profile = model.profile(0)
        expected = sum(t.weight * t.cap_ff * 1e-15 * HCMOS9_LIKE.vdd
                       for t in model.terms_for(0))
        assert profile.integral() == pytest.approx(expected, rel=1e-3)

    def test_heavier_net_widens_and_delays_profile(self):
        balanced = FormalCurrentModel.from_block(build_dual_rail_xor("x"))
        heavy_block = build_dual_rail_xor("y")
        heavy_block.set_level_cap(2, 1, 32.0)
        heavy = FormalCurrentModel.from_block(heavy_block)
        assert heavy.paths[0].completion_time_s() > balanced.paths[0].completion_time_s()
        assert heavy.paths[1].completion_time_s() == pytest.approx(
            balanced.paths[1].completion_time_s()
        )

    def test_shared_terms_rebased_per_path(self):
        """The completion detector fires after the active path completes."""
        block = build_dual_rail_xor("x")
        block.set_level_cap(3, 1, 32.0)  # slow down the rail-0 path only
        model = FormalCurrentModel.from_block(block)
        shared_onset_0 = [t.onset_s for t in model.terms_for(0) if t.level == 4][0]
        shared_onset_1 = [t.onset_s for t in model.terms_for(1) if t.level == 4][0]
        assert shared_onset_0 > shared_onset_1

    def test_block_power_equation3(self):
        model = FormalCurrentModel.from_block(build_dual_rail_xor("x"))
        assert model.block_power_w(1e6) > 0

    def test_average_current_from_term(self):
        model = FormalCurrentModel.from_block(build_dual_rail_xor("x"))
        term = model.paths[0].terms[0]
        assert term.average_current_a(1.2) == pytest.approx(
            term.charge_coulomb(1.2) / term.transition_time_s
        )
