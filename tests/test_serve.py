"""Tests of the campaign execution service (repro.serve).

The contract under test is the serve invariant: serial, pooled
(``workers=N``) and service-scheduled runs of the same grid produce
**byte-identical** rows and store frames — under chunk-level scheduling,
out-of-order completion, worker SIGKILL mid-scenario, heartbeat-timeout
requeue, and full degradation to inline execution.  Plus the transport
(shared-memory slot rings), the scheduling seams (empty grids, the
run-once DRC pre-flight), and the service lifecycle errors.
"""

import multiprocessing

import numpy as np
import pytest

from repro.core import AesSboxSelection, AttackCampaign, TraceSet
from repro.crypto.aes_tables import SBOX
from repro.obs import Telemetry, use
from repro.serve import (
    CampaignService,
    FaultInjection,
    ServeError,
    ServiceConfig,
    ShmRing,
)

KEY = [0] * 16
_SBOX = np.asarray(SBOX, dtype=np.int64)

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="the campaign service needs the fork start method")


def _leaky_source(cost):
    """A deterministic per-row trace source with a tunable cost knob."""

    def source(plaintexts, noise):
        block = np.asarray([[int(byte) for byte in plaintext]
                            for plaintext in plaintexts], dtype=np.int64)
        block = block.reshape(len(plaintexts), -1)
        ticks = np.arange(48, dtype=float)
        matrix = np.zeros((block.shape[0], 48))
        for harmonic in range(1, cost + 1):
            matrix += np.sin(block[:, :1] * 0.37
                             + ticks * 0.05 * harmonic) / harmonic
        matrix[:, 24] += ((_SBOX[block[:, 0]] >> 3) & 1) * 0.5
        if noise is not None:
            matrix = noise.apply_matrix(matrix, 1e-9, 0.0)
        return TraceSet.from_matrix(matrix, plaintexts, 1e-9)

    return source


def _grid(noises=2, costs=(1, 3)):
    campaign = AttackCampaign(KEY, guesses=range(8), mtd_start=32,
                              mtd_step=32)
    for cost in costs:
        campaign.add_design(f"cost-{cost}", trace_source=_leaky_source(cost))
    for index in range(noises):
        campaign.add_noise(f"level-{index}")
    campaign.add_selection(AesSboxSelection(byte_index=0, bit_index=3))
    campaign.add_attack("dpa")
    return campaign


def _store_bytes(path):
    # telemetry.npz is the one legitimately run-dependent table (span
    # timings); every result-bearing frame must be byte-identical.
    return {file.name: file.read_bytes()
            for file in sorted(path.glob("*.npz"))
            if file.name != "telemetry.npz"}


def _service(campaign, config=None, **kwargs):
    service = CampaignService(config or ServiceConfig(workers=2), **kwargs)
    service.register("grid", campaign)
    return service


# --------------------------------------------------------------- transport
class TestShmRing:
    def test_round_trip(self):
        context = multiprocessing.get_context("fork")
        ring = ShmRing(context, slots=2, slot_bytes=1 << 16)
        try:
            array = np.arange(600, dtype=np.float64).reshape(30, 20)
            payload = ring.place(array)
            assert payload is not None
            assert payload.shape == (30, 20)
            assert np.array_equal(ring.take(payload), array)
            ring.release(payload)
        finally:
            ring.close()

    def test_oversized_and_empty_fall_back(self):
        context = multiprocessing.get_context("fork")
        ring = ShmRing(context, slots=1, slot_bytes=64)
        try:
            assert ring.place(np.zeros((100, 100))) is None
            assert ring.place(np.zeros((0, 16))) is None
        finally:
            ring.close()

    def test_released_slots_are_reused(self):
        context = multiprocessing.get_context("fork")
        ring = ShmRing(context, slots=1, slot_bytes=1 << 12)
        try:
            for round_index in range(3):
                array = np.full(16, float(round_index))
                payload = ring.place(array)
                assert payload is not None and payload.slot == 0
                assert np.array_equal(ring.take(payload), array)
                ring.release(payload)
        finally:
            ring.close()


# ------------------------------------------------------------ byte identity
class TestServiceIdentity:
    def test_streaming_rows_match_serial_and_pooled(self):
        campaign = _grid()
        kwargs = dict(trace_count=64, streaming=True, chunk_size=24,
                      compute_disclosure=False)
        serial = campaign.run(**kwargs)
        pooled = campaign.run(workers=2, **kwargs)
        with _service(campaign) as service:
            served = service.run("grid", **kwargs)
        assert pooled.rows == serial.rows
        assert served.rows == serial.rows
        assert served.assessments == serial.assessments

    def test_streaming_store_frames_byte_identical(self, tmp_path):
        campaign = _grid()
        kwargs = dict(trace_count=64, streaming=True, chunk_size=24,
                      compute_disclosure=False)
        campaign.run(store=tmp_path / "serial", **kwargs)
        campaign.run(store=tmp_path / "pooled", workers=2, **kwargs)
        with _service(campaign) as service:
            service.run("grid", store=tmp_path / "served", **kwargs)
        serial = _store_bytes(tmp_path / "serial")
        assert "frame.npz" in serial and "assessments.npz" in serial
        assert _store_bytes(tmp_path / "pooled") == serial
        assert _store_bytes(tmp_path / "served") == serial

    def test_non_streaming_scenario_jobs_match_serial(self):
        campaign = _grid()
        kwargs = dict(trace_count=64, compute_disclosure=False)
        serial = campaign.run(**kwargs)
        with _service(campaign) as service:
            served = service.run("grid", **kwargs)
        assert served.rows == serial.rows
        assert served.assessments == serial.assessments

    def test_non_streaming_worker_spilled_store_identical(self, tmp_path):
        campaign = _grid()
        kwargs = dict(trace_count=64, compute_disclosure=False)
        campaign.run(store=tmp_path / "serial", **kwargs)
        with _service(campaign) as service:
            service.run("grid", store=tmp_path / "served", **kwargs)
        assert _store_bytes(tmp_path / "served") == \
            _store_bytes(tmp_path / "serial")

    def test_store_resume_through_service(self, tmp_path):
        campaign = _grid()
        kwargs = dict(trace_count=64, streaming=True, chunk_size=24,
                      compute_disclosure=False, store=tmp_path / "st")
        with _service(campaign) as service:
            first = service.run("grid", **kwargs)
            telemetry = Telemetry()
            with use(telemetry):
                resumed = service.run("grid", **kwargs)
        assert resumed.rows == first.rows
        # Every scenario came back from the manifest: no jobs were scheduled.
        assert telemetry.snapshot().total("serve.jobs") == 0

    def test_sweep_points_through_service(self):
        from repro.asyncaes.netlist_gen import build_aes_netlist
        from repro.pnr.sweep import PlacementSweep

        sweep = PlacementSweep(
            netlist_factory=lambda: build_aes_netlist(word_width=4,
                                                      detail=0.15),
            effort=0.1, initial_acceptance=(0.3, 0.5), cooling=(0.7,))
        serial = sweep.run()
        service = CampaignService(ServiceConfig(workers=2))
        service.register("sweep", sweep)
        with service:
            served = service.run("sweep")
        assert served.rows == serial.rows
        assert served.flow == serial.flow and served.design == serial.design


# ------------------------------------------------------------ fault paths
class TestWorkerFailure:
    def test_sigkill_mid_scenario_retries_byte_identical(self, tmp_path):
        campaign = _grid()
        kwargs = dict(trace_count=64, streaming=True, chunk_size=24,
                      compute_disclosure=False)
        campaign.run(store=tmp_path / "serial", **kwargs)
        service = _service(
            campaign, ServiceConfig(workers=2, heartbeat_timeout_s=2.0),
            fault_injection=FaultInjection(kill_after_claims={1: 1}))
        telemetry = Telemetry()
        with service, use(telemetry):
            service.run("grid", store=tmp_path / "served", **kwargs)
        root = telemetry.snapshot()
        assert root.total("serve.workers_lost") >= 1
        assert root.total("serve.jobs_requeued") >= 1
        assert root.total("serve.workers_respawned") >= 1
        assert _store_bytes(tmp_path / "served") == \
            _store_bytes(tmp_path / "serial")

    def test_silent_worker_is_timed_out_and_jobs_requeued(self):
        campaign = _grid()
        kwargs = dict(trace_count=64, streaming=True, chunk_size=24,
                      compute_disclosure=False)
        serial = campaign.run(**kwargs)
        # Worker 0 hangs after its first claim and never heartbeats: the
        # scheduler must kill it on beat age and requeue the claimed job.
        service = _service(
            campaign, ServiceConfig(workers=2, heartbeat_timeout_s=0.75),
            fault_injection=FaultInjection(hang_after_claims={0: 1},
                                           mute_heartbeats=(0,)))
        telemetry = Telemetry()
        with service, use(telemetry):
            served = service.run("grid", **kwargs)
        root = telemetry.snapshot()
        assert root.total("serve.workers_timed_out") >= 1
        assert root.total("serve.jobs_requeued") >= 1
        assert served.rows == serial.rows

    def test_total_pool_loss_degrades_to_inline(self):
        campaign = _grid()
        kwargs = dict(trace_count=64, streaming=True, chunk_size=24,
                      compute_disclosure=False)
        serial = campaign.run(**kwargs)
        # Both workers SIGKILL after their first claim and the respawn
        # budget is zero: the scheduler must finish the run inline.
        service = _service(
            campaign,
            ServiceConfig(workers=2, heartbeat_timeout_s=0.75,
                          max_respawns=0),
            fault_injection=FaultInjection(kill_after_claims={0: 1, 1: 1}))
        telemetry = Telemetry()
        with service, use(telemetry):
            served = service.run("grid", **kwargs)
        root = telemetry.snapshot()
        assert root.total("serve.degraded") >= 1
        assert root.total("serve.workers_lost") == 2
        assert served.rows == serial.rows

    def test_worker_error_surfaces_as_serve_error(self):
        campaign = _grid()
        with _service(campaign) as service:
            # Reconfiguring the grid after start changes the fingerprint:
            # every worker rejects the spec and the run must fail loudly.
            campaign.add_noise("level-99")
            with pytest.raises(ServeError, match="failed in worker"):
                service.run("grid", trace_count=64, streaming=True,
                            chunk_size=24, compute_disclosure=False)


# ------------------------------------------------------- scheduling seams
class TestSchedulingSeams:
    def test_empty_scenario_list_yields_nothing(self):
        campaign = _grid()
        plaintexts = [[0] * 16]
        _scenarios, options = campaign._plan_run(
            plaintexts, 0, compute_disclosure=False, keep_results=False,
            streaming=False, chunk_size=None)
        assert list(campaign._run_sharded_iter([], plaintexts, 4,
                                               options)) == []

    def test_empty_sweep_grid_yields_nothing(self):
        from repro.pnr.sweep import PlacementSweep

        sweep = PlacementSweep(netlist_factory=lambda: None)
        assert list(sweep._run_sharded_iter([], 4)) == []

    def test_drc_preflight_runs_once_under_sharding(self):
        from repro.drc import default_registry

        campaign = _grid(noises=4)
        telemetry = Telemetry()
        campaign.run(trace_count=32, compute_disclosure=False, workers=4,
                     drc="warn", telemetry=telemetry)
        expected = len(default_registry().rules(layer="campaign"))
        assert expected > 0
        # One evaluation per rule in the whole tree: the pre-flight ran in
        # the parent only, never again inside the forked shard workers.
        assert telemetry.snapshot().total("drc_rules") == expected

    def test_uneven_grid_spreads_chunks_over_workers(self):
        campaign = _grid(noises=2, costs=(1, 4))
        telemetry = Telemetry()
        with _service(campaign) as service, use(telemetry):
            service.run("grid", trace_count=64, streaming=True,
                        chunk_size=16, compute_disclosure=False)
        root = telemetry.snapshot()
        # 4 scenarios x 4 chunks each, all scheduled as independent jobs.
        assert root.total("serve.jobs") == 16
        assert root.total("chunks") == 16
        assert root.total("traces") == 4 * 64


# ------------------------------------------------------------- lifecycle
class TestServiceLifecycle:
    def test_register_after_start_is_rejected(self):
        campaign = _grid()
        with _service(campaign) as service:
            with pytest.raises(ServeError, match="before start"):
                service.register("late", _grid())

    def test_unregistered_target_is_rejected(self):
        campaign = _grid()
        other = _grid()
        with _service(campaign) as service:
            with pytest.raises(ServeError, match="not registered"):
                other.run(trace_count=32, service=service)
            with pytest.raises(ServeError, match="no target registered"):
                service.run("missing", trace_count=32)

    def test_workers_and_keep_results_do_not_compose(self):
        campaign = _grid()
        with _service(campaign) as service:
            with pytest.raises(ValueError, match="owns the worker pool"):
                campaign.run(trace_count=32, workers=2, service=service)
            with pytest.raises(ValueError, match="keep_results"):
                campaign.run(trace_count=32, keep_results=True,
                             service=service)

    def test_worker_pids_are_live_and_distinct(self):
        campaign = _grid()
        with _service(campaign) as service:
            pids = service.worker_pids()
            assert len(pids) == 2 and len(set(pids)) == 2
        assert service.worker_pids() == []

    def test_service_requires_start(self):
        campaign = _grid()
        service = CampaignService(ServiceConfig(workers=1))
        service.register("grid", campaign)
        with pytest.raises(ServeError, match="not running"):
            campaign.run(trace_count=32, service=service)
