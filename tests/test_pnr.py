"""Tests of the place-and-route substrate (cells, floorplan, placement,
routing, extraction, flows)."""

import pytest

from repro.circuits import build_xor_bank
from repro.core import evaluate_netlist_channels
from repro.electrical import HCMOS9_LIKE
from repro.pnr import (
    ExtractionLookupError,
    FlatPlacer,
    FloorplanError,
    HierarchicalPlacer,
    Rect,
    block_areas_um2,
    cells_from_netlist,
    channel_rail_caps,
    compare_flows,
    die_side_for_area,
    estimate_routing,
    extract_capacitances,
    fanout_factor,
    flat_floorplan,
    hierarchical_floorplan,
    run_flat_flow,
    run_hierarchical_flow,
)


@pytest.fixture(scope="module")
def bank_netlist():
    return build_xor_bank(6, "w").netlist


@pytest.fixture(scope="module")
def bank_cells(bank_netlist):
    return cells_from_netlist(bank_netlist)


class TestCells:
    def test_one_cell_per_instance(self, bank_netlist, bank_cells):
        assert len(bank_cells) == bank_netlist.instance_count

    def test_cell_dimensions_positive(self, bank_cells):
        for cell in bank_cells.values():
            assert cell.width_um > 0 and cell.height_um > 0

    def test_block_areas(self, bank_cells):
        areas = block_areas_um2(bank_cells)
        assert "w_bit0" in areas
        assert all(area > 0 for area in areas.values())

    def test_die_sizing(self):
        width, height = die_side_for_area(1000.0, utilization=0.8, aspect_ratio=2.0)
        assert width * height == pytest.approx(1250.0)
        assert width / height == pytest.approx(2.0)
        with pytest.raises(ValueError):
            die_side_for_area(100.0, utilization=0.0)

    def test_fixed_cell_cannot_move(self, bank_cells):
        cell = next(iter(bank_cells.values()))
        cell.fixed = True
        with pytest.raises(ValueError):
            cell.move_to(1.0, 1.0)
        cell.fixed = False


class TestFloorplan:
    def test_rect_geometry(self):
        rect = Rect(0.0, 0.0, 10.0, 20.0)
        assert rect.area_um2 == pytest.approx(200.0)
        assert rect.contains(5.0, 5.0)
        assert not rect.contains(11.0, 5.0)
        assert rect.clamp(50.0, -3.0) == (10.0, 0.0)
        assert rect.shrunk(1.0).width_um == pytest.approx(8.0)
        with pytest.raises(FloorplanError):
            Rect(0.0, 0.0, -1.0, 5.0)

    def test_flat_floorplan_has_no_regions(self, bank_cells):
        plan = flat_floorplan(bank_cells, utilization=0.8)
        assert not plan.is_hierarchical
        assert plan.die.area_um2 > 0

    def test_hierarchical_floorplan_covers_blocks(self, bank_cells):
        plan = hierarchical_floorplan(bank_cells)
        blocks = {block for block in block_areas_um2(bank_cells) if block}
        assert set(plan.regions) == blocks
        for region in plan.regions.values():
            assert region.rect.x_max <= plan.die.x_max + 1e-6
            assert region.rect.y_max <= plan.die.y_max + 1e-6

    def test_hierarchical_floorplan_needs_blocks(self):
        from repro.circuits import Netlist
        netlist = Netlist("flat_only")
        netlist.add_instance("g", "INV", {"A": "a", "Z": "z"})
        with pytest.raises(FloorplanError):
            hierarchical_floorplan(cells_from_netlist(netlist))

    def test_describe(self, bank_cells):
        plan = hierarchical_floorplan(bank_cells)
        assert "die:" in plan.describe()


class TestPlacement:
    def test_flat_placement_is_legal(self, bank_netlist):
        placement = FlatPlacer(seed=1, effort=0.5).place(bank_netlist)
        assert placement.check_legality() == []
        assert len(placement) == bank_netlist.instance_count

    def test_hierarchical_placement_respects_fences(self, bank_netlist):
        placement = HierarchicalPlacer(seed=1, effort=0.5).place(bank_netlist)
        assert placement.check_legality() == []
        for cell in placement.cells.values():
            region = placement.floorplan.region_for(cell.block)
            if region is not None:
                assert region.rect.contains(cell.x_um, cell.y_um, tolerance=1e-3)

    def test_seeds_give_different_flat_placements(self, bank_netlist):
        p1 = FlatPlacer(seed=1, effort=0.3).place(bank_netlist)
        p2 = FlatPlacer(seed=2, effort=0.3).place(bank_netlist)
        moved = [name for name in p1.cells
                 if p1.position_of(name) != p2.position_of(name)]
        assert moved

    def test_same_seed_is_deterministic(self, bank_netlist):
        p1 = FlatPlacer(seed=5, effort=0.3).place(bank_netlist)
        p2 = FlatPlacer(seed=5, effort=0.3).place(bank_netlist)
        for name in p1.cells:
            assert p1.position_of(name) == p2.position_of(name)


class TestRoutingAndExtraction:
    def test_fanout_factor_monotone(self):
        assert fanout_factor(2) <= fanout_factor(5) <= fanout_factor(20)

    def test_routing_estimate_covers_multi_pin_nets(self, bank_netlist):
        placement = FlatPlacer(seed=3, effort=0.3).place(bank_netlist)
        routing = estimate_routing(bank_netlist, placement)
        assert len(routing.nets) > 0
        assert routing.total_wirelength_um() > 0
        assert all(net.length_um >= net.hpwl_um for net in routing.nets.values())

    def test_extraction_annotates_netlist(self):
        netlist = build_xor_bank(3, "x").netlist
        placement = FlatPlacer(seed=3, effort=0.3).place(netlist)
        report = extract_capacitances(netlist, placement)
        assert len(report) == netlist.net_count
        some_net = next(iter(report.caps_ff))
        assert netlist.net(some_net).routing_cap_ff == pytest.approx(
            report.caps_ff[some_net]
        )
        assert report.max_cap_ff >= HCMOS9_LIKE.via_cap_ff

    def test_cap_of_unknown_net_raises(self):
        """Regression: a routing/annotation net-name mismatch must fail loudly
        instead of reporting a phantom 0.0 fF capacitance (which would
        understate channel dissymmetry and green-light a leaky design)."""
        netlist = build_xor_bank(2, "x").netlist
        placement = FlatPlacer(seed=3, effort=0.3).place(netlist)
        report = extract_capacitances(netlist, placement)
        with pytest.raises(ExtractionLookupError):
            report.cap_of("no_such_net")
        with pytest.raises(KeyError):  # subclass contract for generic callers
            report.cap_of("no_such_net")

    def test_cap_of_default_escape_hatch(self):
        netlist = build_xor_bank(2, "x").netlist
        placement = FlatPlacer(seed=3, effort=0.3).place(netlist)
        report = extract_capacitances(netlist, placement)
        assert report.cap_of("no_such_net", default=0.0) == 0.0
        assert report.cap_of("no_such_net", default=3.5) == 3.5
        some_net = next(iter(report.caps_ff))
        assert report.cap_of(some_net, default=99.0) == report.caps_ff[some_net]

    def test_channel_rail_caps_grouping(self):
        netlist = build_xor_bank(2, "x").netlist
        placement = FlatPlacer(seed=3, effort=0.3).place(netlist)
        extract_capacitances(netlist, placement)
        rails = channel_rail_caps(netlist)
        assert all(len(caps) == 2 for caps in rails.values())


class TestFlows:
    def test_flat_flow_produces_summary(self, bank_netlist):
        design = run_flat_flow(build_xor_bank(4, "f").netlist, seed=1, effort=0.4)
        assert design.flow == "flat"
        assert "cells" in design.summary()
        assert design.area_report().utilization > 0

    def test_hierarchical_flow_and_comparison(self):
        flat_netlist = build_xor_bank(4, "f").netlist
        hier_netlist = build_xor_bank(4, "f").netlist
        flat = run_flat_flow(flat_netlist, seed=1, effort=0.4)
        hier = run_hierarchical_flow(hier_netlist, seed=1, effort=0.4)
        comparison = compare_flows(flat, hier)
        assert comparison["hier_die_area_um2"] > 0
        assert comparison["flat_die_area_um2"] > 0
        # Criterion evaluation runs on both extracted netlists.
        flat_report = evaluate_netlist_channels(flat_netlist)
        hier_report = evaluate_netlist_channels(hier_netlist)
        assert len(flat_report) == len(hier_report) > 0


class TestIncrementalExtractor:
    """Incremental re-extraction must be exactly a full re-extraction."""

    def _placed_bank(self, seed=3):
        from repro.circuits import build_xor_bank

        netlist = build_xor_bank(6, "inc").netlist
        placement = FlatPlacer(seed=seed, effort=0.3).place(netlist)
        return netlist, placement

    def test_initial_state_matches_full_extraction(self):
        from repro.pnr import IncrementalExtractor

        netlist, placement = self._placed_bank()
        extractor = IncrementalExtractor(netlist, placement)
        reference = extract_capacitances(netlist, placement)
        assert extractor.extraction.caps_ff == reference.caps_ff
        assert extractor.full_extractions == 1

    def test_update_after_moves_equals_full_reextraction(self):
        import random

        from repro.pnr import IncrementalExtractor

        netlist, placement = self._placed_bank()
        extractor = IncrementalExtractor(netlist, placement)
        rng = random.Random(11)
        moved = rng.sample(sorted(placement.cells), 5)
        for name in moved:
            cell = placement.cells[name]
            cell.x_um += rng.uniform(-4.0, 4.0)
            cell.y_um += rng.uniform(-4.0, 4.0)
        touched = extractor.update_cells(moved)
        assert touched  # the moved cells pin some nets
        reference = extract_capacitances(netlist, placement)
        # Exact per-net equality, not approx: untouched nets were never
        # recomputed, touched nets went through the same estimator.
        assert extractor.extraction.caps_ff == reference.caps_ff
        assert extractor.extraction.total_wirelength_um == pytest.approx(
            reference.total_wirelength_um)
        assert extractor.full_extractions == 1
        assert extractor.incremental_updates == 1
        assert extractor.nets_reextracted == len(touched)
        assert extractor.nets_reextracted < len(reference)

    def test_update_nets_names_exactly(self):
        from repro.pnr import IncrementalExtractor

        netlist, placement = self._placed_bank()
        extractor = IncrementalExtractor(netlist, placement)
        net = next(iter(extractor.extraction.caps_ff))
        assert extractor.update_nets([net]) == {net}
        assert extractor.update_nets([]) == set()

    def test_topology_change_forces_full_reextraction(self):
        from repro.pnr import IncrementalExtractor
        from repro.pnr.cells import cell_from_instance

        netlist, placement = self._placed_bank()
        extractor = IncrementalExtractor(netlist, placement)
        assert not extractor.stale
        netlist.add_instance("late_buf", "INV",
                             {"A": netlist.net_names()[0], "Z": "late_out"})
        assert extractor.stale
        placement.cells["late_buf"] = cell_from_instance(netlist, "late_buf")
        touched = extractor.update_cells(["late_buf"])
        assert extractor.full_extractions == 2
        assert "late_out" not in touched or touched  # full refresh covers all
        reference = extract_capacitances(netlist, placement)
        assert extractor.extraction.caps_ff == reference.caps_ff

    def test_incremental_is_faster_than_full(self):
        """Loose smoke bound here; the >=10x gate lives in
        benchmarks/bench_hardening.py on the reference AES design."""
        import time

        from repro.pnr import IncrementalExtractor

        netlist, placement = self._placed_bank()
        extractor = IncrementalExtractor(netlist, placement)
        cell = sorted(placement.cells)[0]
        rounds = 30
        start = time.perf_counter()
        for _ in range(rounds):
            extractor.update_cells([cell])
        incremental = time.perf_counter() - start
        start = time.perf_counter()
        for _ in range(rounds):
            estimate_routing(netlist, placement)
            extract_capacitances(netlist, placement)
        full = time.perf_counter() - start
        assert incremental < full

    def test_annotation_bumps_cap_version(self):
        from repro.pnr import IncrementalExtractor

        netlist, placement = self._placed_bank()
        extractor = IncrementalExtractor(netlist, placement)
        version = netlist.cap_version
        cell = sorted(placement.cells)[0]
        placement.cells[cell].x_um += 1.0
        extractor.update_cells([cell])
        assert netlist.cap_version > version
