"""End-to-end integration test: place the asynchronous AES with both flows,
generate power traces, and verify that the flat design leaks more than the
hierarchically placed one (the paper's overall conclusion)."""

import pytest

from repro.asyncaes import AesArchitecture, AesNetlistGenerator, AesPowerTraceGenerator
from repro.core import (
    AesAddRoundKeySelection,
    dpa_bias,
    evaluate_netlist_channels,
)
from repro.crypto import random_key
from repro.crypto.keys import PlaintextGenerator
from repro.pnr import run_flat_flow, run_hierarchical_flow

KEY = random_key(16, seed=21)
TRACE_COUNT = 120


@pytest.fixture(scope="module")
def placed_designs():
    """A flat and a hierarchical placement of the same (reduced) AES."""
    architecture = AesArchitecture(word_width=32, detail=0.1)
    flat_netlist = AesNetlistGenerator(architecture, name="aes_flat").build()
    hier_netlist = AesNetlistGenerator(architecture, name="aes_hier").build()
    run_flat_flow(flat_netlist, seed=5, effort=0.5)
    run_hierarchical_flow(hier_netlist, seed=5, effort=0.5)
    return architecture, flat_netlist, hier_netlist


class TestFlatVsHierarchicalLeakage:
    def test_criterion_improvement(self, placed_designs):
        """Table 2: the hierarchical flow bounds the dissymmetry criterion."""
        _, flat_netlist, hier_netlist = placed_designs
        flat_report = evaluate_netlist_channels(flat_netlist, design_name="AES_v2")
        hier_report = evaluate_netlist_channels(hier_netlist, design_name="AES_v1")
        assert hier_report.max_dissymmetry < flat_report.max_dissymmetry
        assert hier_report.mean_dissymmetry < 0.5 * flat_report.mean_dissymmetry

    def test_known_key_bias_is_stronger_on_flat_design(self, placed_designs):
        """Equations (7)-(9) applied to synthesized traces: the DPA bias of the
        correct key hypothesis is larger for the flat placement."""
        architecture, flat_netlist, hier_netlist = placed_designs
        plaintexts = PlaintextGenerator(seed=31).batch(TRACE_COUNT)

        flat_gen = AesPowerTraceGenerator(flat_netlist, KEY, architecture=architecture)
        hier_gen = AesPowerTraceGenerator(hier_netlist, KEY, architecture=architecture)

        # Attack the bit of byte 0 whose first-round channel is the most
        # unbalanced in the flat design (the attacker's best choice).
        best_bit = max(range(8), key=lambda j: flat_gen.channel_dissymmetry(
            "addkey0_to_mux", 24 + j))
        selection = AesAddRoundKeySelection(byte_index=0, bit_index=best_bit)

        flat_traces = flat_gen.trace_set(plaintexts)
        hier_traces = hier_gen.trace_set(plaintexts)
        flat_bias = dpa_bias(flat_traces, selection, KEY[0])
        hier_bias = dpa_bias(hier_traces, selection, KEY[0])

        assert flat_bias.max_abs() > hier_bias.max_abs()

    def test_traces_of_both_designs_have_same_schedule(self, placed_designs):
        """Both designs run the same algorithm; only capacitances differ."""
        architecture, flat_netlist, hier_netlist = placed_designs
        flat_gen = AesPowerTraceGenerator(flat_netlist, KEY, architecture=architecture)
        hier_gen = AesPowerTraceGenerator(hier_netlist, KEY, architecture=architecture)
        plaintext = list(range(16))
        flat_trace = flat_gen.trace(plaintext)
        hier_trace = hier_gen.trace(plaintext)
        assert len(flat_trace) == len(hier_trace)
        assert flat_gen.target_slot() == hier_gen.target_slot()
