"""Tests of the static security DRC: diagnostics, every rule, the gates.

Each rule gets one minimal seeded violation that makes it fire, the clean
reference designs must produce zero error-severity diagnostics, and the
campaign pre-flight is regression-tested against the legacy runtime-error
behaviour it re-expresses statically.
"""

import json

import pytest

from repro.circuits.gates import CellLibrary, GateType, default_library
from repro.circuits.netlist import Netlist
from repro.core.flow import AttackCampaign
from repro.core.selection import AesSboxSelection
from repro.drc import (
    Diagnostic,
    DrcError,
    DrcLocation,
    DrcPass,
    DrcReport,
    Rule,
    RuleRegistry,
    Severity,
    default_registry,
    run_campaign_preflight,
    run_drc,
)
from repro.drc.__main__ import main as drc_main
from repro.pnr.cells import PlacedCell
from repro.pnr.floorplan import Floorplan, Rect, Region
from repro.pnr.placement import Placement, legality_violations
from repro.store.manifest import StoreManifest
from repro.store.schema import StoreError

KEY = [0x2B, 0x7E, 0x15, 0x16, 0x28, 0xAE, 0xD2, 0xA6,
       0xAB, 0xF7, 0x15, 0x88, 0x09, 0xCF, 0x4F, 0x3C]


# ------------------------------------------------------------ net helpers
def _clean_netlist() -> Netlist:
    netlist = Netlist("clean")
    netlist.add_input("a")
    netlist.add_instance("g1", "INV", {"A": "a", "Z": "y"})
    netlist.add_output("y")
    return netlist


def _channel_netlist(cap_r0: float = 1.0, cap_r1: float = 1.0) -> Netlist:
    """A symmetric dual-rail channel ``c`` driven by two buffers."""
    netlist = Netlist("chan")
    netlist.add_input("a")
    netlist.add_instance("d0", "BUF", {"A": "a", "Z": "c_r0"})
    netlist.add_instance("d1", "BUF", {"A": "a", "Z": "c_r1"})
    netlist.add_net("c_r0", channel="c", rail=0)
    netlist.add_net("c_r1", channel="c", rail=1)
    netlist.add_output("o0", "c_r0")
    netlist.add_output("o1", "c_r1")
    netlist.set_routing_cap("c_r0", cap_r0)
    netlist.set_routing_cap("c_r1", cap_r1)
    return netlist


def _rules_fired(report: DrcReport):
    return {diag.rule for diag in report.diagnostics}


def _synthetic_source(plaintexts, noise):  # module level: picklable
    raise AssertionError("the pre-flight must never generate traces")


def _grid_campaign(trace_source=_synthetic_source) -> AttackCampaign:
    campaign = AttackCampaign(KEY, mtd_start=50, mtd_step=50)
    campaign.add_design("synth", trace_source=trace_source)
    campaign.add_selection(AesSboxSelection(byte_index=0, bit_index=3))
    return campaign


# ------------------------------------------------------------- diagnostics
class TestDiagnostics:
    def test_severity_parse_and_rank(self):
        assert Severity.parse("error") is Severity.ERROR
        assert Severity.parse("WARNING") is Severity.WARNING
        assert Severity.parse(Severity.INFO) is Severity.INFO
        assert Severity.ERROR.rank < Severity.WARNING.rank < Severity.INFO.rank
        with pytest.raises(ValueError, match="unknown severity"):
            Severity.parse("fatal")

    def test_location_render(self):
        assert DrcLocation("net", "x").render() == "net:x"
        assert DrcLocation("channel", "c", "rail 1").render() == "channel:c[rail 1]"

    def test_report_orders_errors_first_deterministically(self):
        report = DrcReport(subject="t")
        report.add(Diagnostic("ZZZ9", Severity.WARNING, "w",
                              DrcLocation("net", "a")))
        report.add(Diagnostic("AAA1", Severity.ERROR, "e2",
                              DrcLocation("net", "b")))
        report.add(Diagnostic("AAA1", Severity.ERROR, "e1",
                              DrcLocation("net", "a")))
        ordered = report.diagnostics
        assert [d.message for d in ordered] == ["e1", "e2", "w"]
        assert report.has_errors
        assert report.counts() == {"error": 2, "warning": 1, "info": 0}
        assert "2 error(s), 1 warning(s)" in report.summary()

    def test_jsonl_round_trip(self, tmp_path):
        report = DrcReport(subject="round")
        report.rules_checked.extend(["NET001", "SEC002"])
        report.add(Diagnostic("NET001", Severity.ERROR, "boom",
                              DrcLocation("net", "x", "port p"), hint="fix"))
        path = report.write_jsonl(tmp_path / "drc.jsonl")
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines[0]["type"] == "report"
        assert lines[0]["error"] == 1
        assert lines[1]["rule"] == "NET001"
        back = DrcReport.read_jsonl(path)
        assert back.subject == "round"
        assert back.diagnostics == report.diagnostics
        assert sorted(back.rules_checked) == ["NET001", "SEC002"]

    def test_jsonl_rejects_malformed_logs(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(ValueError, match="empty"):
            DrcReport.read_jsonl(empty)
        headless = tmp_path / "headless.jsonl"
        headless.write_text(json.dumps({"type": "diagnostic", "rule": "X",
                                        "severity": "error", "message": "m"})
                            + "\n")
        with pytest.raises(ValueError, match="before the report header"):
            DrcReport.read_jsonl(headless)

    def test_drc_error_lists_every_error(self):
        report = DrcReport(subject="t")
        report.add(Diagnostic("NET001", Severity.ERROR, "first",
                              DrcLocation("net", "a")))
        report.add(Diagnostic("NET005", Severity.ERROR, "second",
                              DrcLocation("channel", "c")))
        error = DrcError(report, subject="t")
        assert "2 error(s)" in str(error)
        assert "first" in str(error) and "second" in str(error)
        assert error.report is report


# ---------------------------------------------------------------- registry
class TestRegistry:
    def test_default_registry_catalog(self):
        registry = default_registry()
        assert len(registry) >= 10
        expected = {"NET001", "NET002", "NET003", "NET004", "NET005",
                    "NET006", "SEC001", "SEC002", "SEC003", "PLC001",
                    "PLC002", "PLC003", "CAM001", "CAM002", "CAM003",
                    "CAM004"}
        assert expected <= set(registry.rule_ids())
        for rule_id in registry.rule_ids():
            assert rule_id in registry.catalog_table()

    def test_unknown_rule_ids_never_no_op(self):
        registry = default_registry()
        for method in (registry.disable, registry.enable,
                       registry.is_enabled):
            with pytest.raises(KeyError, match="unknown rule"):
                method("NOPE99")
        with pytest.raises(KeyError, match="unknown rule"):
            registry.set_severity("NOPE99", "error")

    def test_disable_and_severity_override(self):
        registry = default_registry()
        netlist = Netlist("t")
        netlist.add_net("dead")  # NET002 warning
        report = run_drc(netlist, registry=registry, layers=("netlist",))
        assert "NET002" in _rules_fired(report)
        registry.set_severity("NET002", "error")
        report = run_drc(netlist, registry=registry, layers=("netlist",))
        assert report.by_rule("NET002")[0].severity is Severity.ERROR
        registry.disable("NET002")
        assert not registry.is_enabled("NET002")
        report = run_drc(netlist, registry=registry, layers=("netlist",))
        assert "NET002" not in _rules_fired(report)
        assert "NET002" not in report.rules_checked

    def test_copy_is_independent(self):
        registry = default_registry()
        clone = registry.copy()
        clone.disable("NET001").set_severity("NET002", "info")
        assert registry.is_enabled("NET001")
        assert registry.effective_severity("NET002") is Severity.WARNING
        assert not clone.is_enabled("NET001")
        assert clone.effective_severity("NET002") is Severity.INFO

    def test_duplicate_and_bad_layer_rejected(self):
        registry = default_registry()
        with pytest.raises(ValueError, match="duplicate rule id"):
            registry.register(registry.rule("NET001"))
        with pytest.raises(ValueError, match="unknown layer"):
            Rule("X1", "t", "electrical", Severity.ERROR, lambda ctx: [])

    def test_crashing_rule_becomes_error_diagnostic(self):
        def explode(context):
            raise RuntimeError("kaboom")

        registry = RuleRegistry([Rule("X1", "explodes", "netlist",
                                      Severity.WARNING, explode)])
        report = run_drc(Netlist("t"), registry=registry)
        assert report.has_errors
        assert "kaboom" in report.errors[0].message
        assert report.errors[0].rule == "X1"


# ------------------------------------------------------------ netlist rules
class TestNetlistRules:
    def test_clean_netlist_is_clean(self):
        report = run_drc(_clean_netlist())
        assert len(report.diagnostics) == 0
        assert set(report.rules_checked) >= {"NET001", "SEC001"}

    def test_net001_floating_net(self):
        netlist = Netlist("t")
        netlist.add_instance("g1", "INV", {"A": "x", "Z": "y"})
        report = run_drc(netlist, layers=("netlist",))
        hits = report.by_rule("NET001")
        assert [h.location.name for h in hits] == ["x"]
        assert hits[0].severity is Severity.ERROR

    def test_net001_undriven_output_port(self):
        netlist = Netlist("t")
        netlist.add_output("o")
        report = run_drc(netlist, layers=("netlist",))
        assert any("output port" in h.message
                   for h in report.by_rule("NET001"))

    def test_net002_dangling_net(self):
        netlist = _clean_netlist()
        netlist.add_net("dead")
        report = run_drc(netlist, layers=("netlist",))
        hits = report.by_rule("NET002")
        assert [h.location.name for h in hits] == ["dead"]
        assert hits[0].severity is Severity.WARNING

    def test_net003_combinational_cycle(self):
        netlist = Netlist("t")
        netlist.add_instance("i1", "INV", {"A": "x", "Z": "y"})
        netlist.add_instance("i2", "INV", {"A": "y", "Z": "x"})
        report = run_drc(netlist, layers=("netlist",))
        hits = report.by_rule("NET003")
        assert len(hits) == 1
        assert "i1 -> i2" in hits[0].message or "i2 -> i1" in hits[0].message

    def test_net003_muller_feedback_is_not_a_cycle(self):
        netlist = Netlist("t")
        netlist.add_input("a")
        netlist.add_instance("m1", "MULLER2", {"A": "a", "B": "fb", "Z": "q"})
        netlist.add_instance("b1", "BUF", {"A": "q", "Z": "fb"})
        report = run_drc(netlist, layers=("netlist",))
        assert report.by_rule("NET003") == []

    def test_net004_broken_truth_table(self):
        library = default_library()

        def explode(values, previous):
            raise RuntimeError("no table")

        library.add(GateType(name="BROKEN", inputs=("A",), output="Z",
                             evaluate=explode))
        netlist = Netlist("t", library=library)
        netlist.add_input("a")
        netlist.add_instance("g", "BROKEN", {"A": "a", "Z": "y"})
        report = run_drc(netlist, layers=("netlist",))
        hits = report.by_rule("NET004")
        assert [h.location.name for h in hits] == ["BROKEN"]
        assert "no table" in hits[0].message

    def test_net004_missing_cell(self):
        netlist = Netlist("t")
        netlist.add_input("a")
        netlist.add_instance("g", "INV", {"A": "a", "Z": "y"})
        netlist.library = CellLibrary()  # the cell vanished from the library
        registry = default_registry()
        context_report = run_drc(netlist, registry=registry,
                                 layers=("netlist",))
        hits = context_report.by_rule("NET004")
        assert hits and "missing" in hits[0].message

    def test_net005_channel_rail_defects(self):
        netlist = _channel_netlist()
        netlist.add_net("lone_r0", channel="lone", rail=0)  # single rail
        netlist.add_net("gap_r0", channel="gap", rail=0)
        netlist.add_net("gap_r2", channel="gap", rail=2)  # non-contiguous
        report = run_drc(netlist, layers=("netlist",))
        messages = " | ".join(h.message for h in report.by_rule("NET005"))
        channels = {h.location.name for h in report.by_rule("NET005")}
        assert channels == {"lone", "gap"}
        assert "only 1 rail" in messages
        assert "not contiguous" in messages
        # The healthy channel stays silent.
        assert "channel c" not in messages

    def test_net006_input_port_with_internal_driver(self):
        netlist = Netlist("t")
        netlist.add_input("a")
        netlist.add_input("b")
        netlist.add_instance("g", "INV", {"A": "b", "Z": "a"})
        report = run_drc(netlist, layers=("netlist",))
        hits = report.by_rule("NET006")
        assert [h.location.name for h in hits] == ["a"]
        assert "'g'" in hits[0].message


# ----------------------------------------------------------- security rules
class TestSecurityRules:
    def test_sec001_asymmetric_cones(self):
        netlist = Netlist("t")
        netlist.add_input("a")
        netlist.add_instance("u1", "INV", {"A": "a", "Z": "m"})
        netlist.add_instance("u2", "INV", {"A": "m", "Z": "c_r0"})
        netlist.add_instance("u3", "BUF", {"A": "a", "Z": "c_r1"})
        netlist.add_net("c_r0", channel="c", rail=0)
        netlist.add_net("c_r1", channel="c", rail=1)
        report = run_drc(netlist, layers=("security",))
        hits = report.by_rule("SEC001")
        assert hits and hits[0].location.name == "c"
        assert hits[0].severity is Severity.ERROR

    def test_sec001_symmetric_channel_is_clean(self):
        report = run_drc(_channel_netlist(), layers=("security",))
        assert report.by_rule("SEC001") == []

    def test_sec002_dissymmetry_above_bound(self):
        netlist = _channel_netlist(cap_r0=10.0, cap_r1=1.0)
        report = run_drc(netlist, layers=("security",), cap_bound=0.15)
        hits = report.by_rule("SEC002")
        assert hits and hits[0].severity is Severity.WARNING
        assert "d_A" in hits[0].message
        # A generous bound silences the rule without touching the netlist.
        relaxed = run_drc(netlist, layers=("security",), cap_bound=50.0)
        assert relaxed.by_rule("SEC002") == []

    def test_sec003_dummy_load_on_disconnected_net(self):
        netlist = _clean_netlist()
        netlist.add_net("ghost")
        netlist.add_dummy_load("ghost", 4.0)
        report = run_drc(netlist, layers=("security",))
        hits = report.by_rule("SEC003")
        assert [h.location.name for h in hits] == ["ghost"]
        assert hits[0].severity is Severity.ERROR
        # A dummy load on a live net is the hardening pass's normal output.
        netlist2 = _channel_netlist()
        netlist2.add_dummy_load("c_r0", 4.0)
        assert run_drc(netlist2, layers=("security",)).by_rule("SEC003") == []

    def test_sec003_negative_dummy_load(self):
        netlist = _clean_netlist()
        netlist.net("y").dummy_cap_ff = -1.0
        netlist.touch_caps()
        report = run_drc(netlist, layers=("security",))
        assert any("negative" in h.message
                   for h in report.by_rule("SEC003"))


# ---------------------------------------------------------- placement rules
def _placement(cells) -> Placement:
    floorplan = Floorplan(
        die=Rect(0.0, 0.0, 100.0, 100.0),
        regions={"blk": Region(block="blk",
                               rect=Rect(0.0, 0.0, 40.0, 40.0))})
    return Placement(cells={c.name: c for c in cells}, floorplan=floorplan)


class TestPlacementRules:
    def test_plc001_cell_outside_fence(self):
        placement = _placement([
            PlacedCell("ok", 2.0, 2.0, block="blk", x_um=10.0, y_um=10.0),
            PlacedCell("out", 2.0, 2.0, block="blk", x_um=90.0, y_um=90.0),
        ])
        report = run_drc(placement=placement, layers=("placement",))
        hits = report.by_rule("PLC001")
        assert [h.location.name for h in hits] == ["out"]
        assert hits[0].severity is Severity.ERROR

    def test_plc002_overlapping_cells(self):
        placement = _placement([
            PlacedCell("a", 4.0, 4.0, x_um=50.0, y_um=50.0),
            PlacedCell("b", 4.0, 4.0, x_um=52.0, y_um=51.0),
            PlacedCell("far", 4.0, 4.0, x_um=80.0, y_um=20.0),
        ])
        report = run_drc(placement=placement, layers=("placement",))
        hits = report.by_rule("PLC002")
        assert len(hits) == 1
        assert hits[0].severity is Severity.WARNING
        assert "overlaps cell 'b'" in hits[0].message

    def test_plc003_fixed_cell_violations(self):
        placement = _placement([
            PlacedCell("stuck", 2.0, 2.0, block="blk", x_um=90.0, y_um=90.0,
                       fixed=True),
            PlacedCell("f1", 4.0, 4.0, x_um=50.0, y_um=50.0, fixed=True),
            PlacedCell("f2", 4.0, 4.0, x_um=51.0, y_um=50.0, fixed=True),
            PlacedCell("loose", 4.0, 4.0, x_um=51.0, y_um=50.5),
        ])
        report = run_drc(placement=placement, layers=("placement",))
        messages = [h.message for h in report.by_rule("PLC003")]
        assert any("'stuck'" in m and "fence" in m for m in messages)
        assert any("'f1'" in m and "'f2'" in m for m in messages)
        # The movable overlapper is PLC002's business, not PLC003's.
        assert not any("loose" in m for m in messages)

    def test_check_legality_and_drc_share_one_verdict(self):
        """Regression: the placer's strings are the DRC records, verbatim."""
        placement = _placement([
            PlacedCell("in", 2.0, 2.0, block="blk", x_um=5.0, y_um=5.0),
            PlacedCell("out1", 2.0, 2.0, block="blk", x_um=77.7, y_um=3.0),
            PlacedCell("out2", 2.0, 2.0, x_um=105.0, y_um=50.0),
        ])
        legacy = placement.check_legality()
        structured = legality_violations(placement.cells,
                                         placement.floorplan)
        assert legacy == [v.describe() for v in structured]
        assert [v.cell for v in structured] == ["out1", "out2"]
        assert "outside its 'blk' fence" in legacy[0]
        assert "outside its 'die' fence" in legacy[1]
        report = run_drc(placement=placement, layers=("placement",))
        assert ([h.message for h in report.by_rule("PLC001")]
                == sorted(legacy))


# ----------------------------------------------------------- campaign rules
class TestCampaignRules:
    def test_cam001_duplicate_labels(self):
        campaign = _grid_campaign()
        campaign.add_design("synth", trace_source=_synthetic_source)
        campaign.add_noise("n0")
        campaign.add_noise("n0")
        report = run_campaign_preflight(campaign)
        messages = [h.message for h in report.by_rule("CAM001")]
        assert any("design label 'synth'" in m for m in messages)
        assert any("noise label 'n0'" in m for m in messages)

    def test_cam001_true_guess_outside_subset(self):
        campaign = AttackCampaign(KEY, guesses=[0x00, 0x01])
        campaign.add_design("synth", trace_source=_synthetic_source)
        campaign.add_selection(AesSboxSelection(byte_index=0, bit_index=3))
        report = run_campaign_preflight(campaign)
        hits = report.by_rule("CAM001")
        assert hits and f"{KEY[0]:#04x}" in hits[0].message

    def test_cam002_unpicklable_source_under_sharding(self):
        campaign = _grid_campaign(
            trace_source=lambda plaintexts, noise: None)
        report = run_campaign_preflight(campaign, workers=2)
        hits = report.by_rule("CAM002")
        assert hits and hits[0].severity is Severity.ERROR
        assert "does not pickle" in hits[0].message
        # Serial runs never pickle anything.
        assert run_campaign_preflight(campaign).by_rule("CAM002") == []
        # Module-level sources pickle fine.
        assert run_campaign_preflight(_grid_campaign(),
                                      workers=2).by_rule("CAM002") == []

    def test_cam002_unpicklable_noise_factory(self):
        campaign = _grid_campaign()
        campaign.add_noise("gauss", lambda: None)
        report = run_campaign_preflight(campaign, workers=4)
        assert any("noise factory 'gauss'" in h.message
                   for h in report.by_rule("CAM002"))

    def test_cam003_second_order_under_streaming(self):
        campaign = _grid_campaign()
        campaign.add_attack("dpa")
        campaign.add_attack("dpa2")
        report = run_campaign_preflight(campaign, streaming=True,
                                        chunk_size=16)
        hits = report.by_rule("CAM003")
        assert len(hits) == 1
        assert "second-order" in hits[0].message
        # In-memory runs take second-order kernels just fine.
        assert run_campaign_preflight(campaign).by_rule("CAM003") == []

    def test_cam004_store_manifest_mismatches(self, tmp_path):
        campaign = _grid_campaign()
        fresh = tmp_path / "fresh"
        fresh.mkdir()
        assert run_campaign_preflight(
            campaign, store=fresh).by_rule("CAM004") == []

        wrong_kind = tmp_path / "kind"
        wrong_kind.mkdir()
        StoreManifest(kind="sweep", fingerprint="f",
                      scenario_keys=["noiseless/synth"]).save(wrong_kind)
        report = run_campaign_preflight(campaign, store=wrong_kind)
        assert any("'sweep'" in h.message for h in report.by_rule("CAM004"))

        wrong_keys = tmp_path / "keys"
        wrong_keys.mkdir()
        StoreManifest(kind="campaign", fingerprint="f",
                      scenario_keys=["noiseless/other"]).save(wrong_keys)
        report = run_campaign_preflight(campaign, store=wrong_keys)
        assert any("scenario keys" in h.message
                   for h in report.by_rule("CAM004"))

    def test_cam004_fingerprint_mismatch_with_plaintexts(self, tmp_path):
        campaign = _grid_campaign()
        store = tmp_path / "fp"
        store.mkdir()
        StoreManifest(kind="campaign", fingerprint="stale",
                      scenario_keys=["noiseless/synth"]).save(store)
        plaintexts = [[0] * 16, [1] * 16]
        report = run_campaign_preflight(campaign, store=store,
                                        plaintexts=plaintexts)
        assert any("fingerprint" in h.message
                   for h in report.by_rule("CAM004"))


# ------------------------------------------------- campaign gate regression
class TestCampaignGate:
    def test_run_rejects_unknown_drc_mode(self):
        with pytest.raises(ValueError, match="drc must be"):
            _grid_campaign().run(4, drc="loud")

    def test_gate_raises_before_any_trace_generation(self, tmp_path):
        """drc='error' fires before the trace source is ever called."""
        campaign = _grid_campaign()  # source raises if invoked
        store = tmp_path / "mismatch"
        store.mkdir()
        StoreManifest(kind="sweep", fingerprint="f",
                      scenario_keys=["noiseless/synth"]).save(store)
        with pytest.raises(DrcError) as excinfo:
            campaign.run(4, store=store, drc="error")
        assert "CAM004" in str(excinfo.value)

    def test_legacy_runtime_error_survives_with_drc_off(self, tmp_path):
        """Regression: drc='off' reproduces the old mid-run StoreError."""
        campaign = _grid_campaign()
        store = tmp_path / "mismatch"
        store.mkdir()
        StoreManifest(kind="sweep", fingerprint="f",
                      scenario_keys=["noiseless/synth"]).save(store)
        with pytest.raises(StoreError, match="use a fresh directory"):
            campaign.run(4, store=store, drc="off")

    def test_streaming_second_order_static_vs_runtime(self):
        from repro.core.dpa import DPAError

        def source(plaintexts, noise):
            import numpy as np

            from repro.core.dpa import TraceSet

            rng = np.random.default_rng(0)
            matrix = rng.normal(size=(len(plaintexts), 8))
            return TraceSet.from_matrix(matrix,
                                        [list(p) for p in plaintexts], 1e-9)

        campaign = AttackCampaign(KEY, mtd_start=50, mtd_step=50)
        campaign.add_design("synth", trace_source=source)
        campaign.add_selection(AesSboxSelection(byte_index=0, bit_index=3))
        campaign.add_attack("dpa2")
        with pytest.raises(DrcError) as excinfo:
            campaign.run(8, streaming=True, chunk_size=4, drc="error")
        assert "CAM003" in str(excinfo.value)
        with pytest.raises(DPAError, match="streaming"):
            campaign.run(8, streaming=True, chunk_size=4, drc="off")

    def test_default_warn_mode_logs_and_proceeds(self, caplog):
        import logging

        from repro.core.dpa import DPAError

        campaign = _grid_campaign()
        campaign.add_attack("dpa2")
        with caplog.at_level(logging.WARNING, logger="repro.core.flow"):
            # The gate only warns; the legacy error still lands at runtime
            # (here: the exploding trace source is reached).
            with pytest.raises((AssertionError, DPAError)):
                campaign.run(4, streaming=True, chunk_size=2)
        assert any("CAM003" in record.message
                   for record in caplog.records)

    def test_clean_campaign_runs_under_error_gate(self):
        def source(plaintexts, noise):
            import numpy as np

            from repro.core.dpa import TraceSet

            rng = np.random.default_rng(1)
            matrix = rng.normal(size=(len(plaintexts), 8))
            return TraceSet.from_matrix(matrix,
                                        [list(p) for p in plaintexts], 1e-9)

        campaign = AttackCampaign(KEY, mtd_start=4, mtd_step=4)
        campaign.add_design("synth", trace_source=source)
        campaign.add_selection(AesSboxSelection(byte_index=0, bit_index=3))
        result = campaign.run(8, drc="error")
        assert len(result.rows) == 1


# ------------------------------------------------------------ pipeline pass
class TestDrcPass:
    def test_pass_records_report_and_gates(self):
        from repro.harden.passes import PassContext

        context = PassContext(netlist=_channel_netlist())
        outcome = DrcPass().run(context)
        assert outcome.pass_name == "drc"
        assert outcome.changed is False
        assert len(context.scratch["drc_reports"]) == 1
        # A second execution appends, never overwrites.
        DrcPass(name="drc-post").run(context)
        assert len(context.scratch["drc_reports"]) == 2

    def test_pass_raises_on_errors_when_gating(self):
        from repro.harden.passes import PassContext

        netlist = _clean_netlist()
        netlist.add_net("ghost")
        netlist.add_dummy_load("ghost", 2.0)  # SEC003 error
        context = PassContext(netlist=netlist)
        with pytest.raises(DrcError, match="SEC003"):
            DrcPass().run(context)
        assert DrcPass(fail_on=None).run(context).changed is False
        with pytest.raises(ValueError, match="fail_on"):
            DrcPass(fail_on="everything")

    def test_pass_runs_inside_pipeline(self):
        from repro.harden.passes import ExtractionPass, FlatPlacementPass
        from repro.harden.pipeline import PassPipeline

        pipeline = PassPipeline(
            [FlatPlacementPass(effort=0.2), ExtractionPass(),
             DrcPass(name="drc-gate", fail_on=None)],
            name="drc-flat")
        result = pipeline.run(_channel_netlist())
        names = [record.pass_name for record in result.records]
        assert names[-1] == "drc-gate"
        assert result.records[-1].changed is False


# ----------------------------------------------------------- reference flows
class TestReferenceFlows:
    def test_reference_netlist_and_flows_have_zero_errors(self):
        from repro.asyncaes.netlist_gen import build_aes_netlist
        from repro.pnr.flows import run_flat_flow, run_hierarchical_flow

        netlist = build_aes_netlist(word_width=8, detail=0.25)
        bare = run_drc(netlist)
        assert bare.errors == [], bare.render()
        flat = run_flat_flow(netlist, seed=1, effort=0.15)
        hier = run_hierarchical_flow(netlist, seed=1, effort=0.15)
        for design in (flat, hier):
            report = run_drc(design.netlist, placement=design.placement,
                             subject=design.flow)
            assert report.errors == [], report.render()

    def test_hardened_flow_has_zero_errors(self):
        from repro.asyncaes.netlist_gen import build_aes_netlist
        from repro.harden.pipeline import harden_design

        netlist = build_aes_netlist(word_width=8, detail=0.25)
        result = harden_design(netlist, bound=0.15, seed=1, effort=0.15)
        report = run_drc(result.design.netlist,
                         placement=result.design.placement,
                         subject="hardened")
        assert report.errors == [], report.render()


# -------------------------------------------------------------------- CLI
class TestCli:
    def test_rules_listing(self, capsys):
        assert drc_main(["--rules"]) == 0
        out = capsys.readouterr().out
        assert "NET001" in out and "CAM004" in out

    def test_campaign_target_and_json(self, tmp_path, capsys):
        path = tmp_path / "report.jsonl"
        code = drc_main(["campaign", "-q", "--json", str(path)])
        assert code == 0
        back = DrcReport.read_jsonl(path)
        assert back.errors == []
        assert "campaign" in capsys.readouterr().out

    def test_netlist_target_exit_code(self, capsys):
        code = drc_main(["netlist", "-q", "--word-width", "8",
                         "--detail", "0.2"])
        assert code == 0
        assert "0 error(s)" in capsys.readouterr().out
