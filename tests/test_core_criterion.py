"""Tests of the channel dissymmetry criterion of Section VI."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import Netlist, build_xor_bank
from repro.core import (
    CriterionError,
    channel_dissymmetry,
    compare_reports,
    evaluate_capacitance_map,
    evaluate_netlist_channels,
)


class TestChannelDissymmetry:
    def test_paper_definition(self):
        """d_A = |Cl0 - Cl1| / min(Cl0, Cl1)."""
        assert channel_dissymmetry([20.0, 45.0]) == pytest.approx(25.0 / 20.0)
        assert channel_dissymmetry([46.0, 23.0]) == pytest.approx(1.0)

    def test_balanced_channel_is_zero(self):
        assert channel_dissymmetry([12.0, 12.0]) == pytest.approx(0.0)

    def test_one_of_n_uses_spread(self):
        assert channel_dissymmetry([10.0, 12.0, 20.0]) == pytest.approx(1.0)

    def test_zero_capacitance_gives_infinity(self):
        assert channel_dissymmetry([0.0, 5.0]) == float("inf")
        assert channel_dissymmetry([0.0, 0.0]) == 0.0

    def test_invalid_inputs(self):
        with pytest.raises(CriterionError):
            channel_dissymmetry([5.0])
        with pytest.raises(CriterionError):
            channel_dissymmetry([-1.0, 2.0])

    @given(st.lists(st.floats(min_value=0.1, max_value=1000.0), min_size=2, max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_nonnegative_property(self, caps):
        assert channel_dissymmetry(caps) >= 0.0

    @given(st.floats(min_value=0.1, max_value=100.0),
           st.floats(min_value=0.1, max_value=100.0))
    @settings(max_examples=50, deadline=None)
    def test_symmetry_property(self, a, b):
        assert channel_dissymmetry([a, b]) == pytest.approx(channel_dissymmetry([b, a]))

    @given(st.floats(min_value=0.1, max_value=100.0),
           st.floats(min_value=0.1, max_value=100.0),
           st.floats(min_value=0.1, max_value=10.0))
    @settings(max_examples=50, deadline=None)
    def test_scale_invariance_property(self, a, b, scale):
        """The criterion is a ratio: scaling both rails leaves it unchanged."""
        assert channel_dissymmetry([a * scale, b * scale]) == pytest.approx(
            channel_dissymmetry([a, b]), rel=1e-6
        )


class TestReports:
    def test_capacitance_map_report(self):
        report = evaluate_capacitance_map({
            "core/hb_b25": [23.0, 46.0],
            "core/dmux_b6": [103.0, 110.0],
            "key/fifo_b3": [30.0, 30.0],
        }, design_name="AES_v2")
        assert len(report) == 3
        assert report.max_dissymmetry == pytest.approx(1.0)
        worst = report.worst(1)[0]
        assert worst.channel == "core/hb_b25"
        assert worst.bit == 25
        assert report.channels_above(0.5)[0].channel == "core/hb_b25"
        assert not report.meets_bound(0.13)

    def test_netlist_report_uses_channel_annotations(self):
        bank = build_xor_bank(4, "w")
        report = evaluate_netlist_channels(bank.netlist)
        # Every bit XOR exposes three boundary channels (a, b, c).
        assert len(report) == 12
        assert all(len(c.rail_caps_ff) == 2 for c in report.channels)

    def test_report_detects_injected_imbalance(self):
        bank = build_xor_bank(2, "w")
        target = bank.bit(0).outputs[0]
        bank.netlist.set_routing_cap(target.rails[0], 50.0)
        report = evaluate_netlist_channels(bank.netlist)
        assert report.worst(1)[0].channel == target.name

    def test_empty_netlist_report(self):
        report = evaluate_netlist_channels(Netlist("empty"))
        assert len(report) == 0
        assert report.max_dissymmetry == 0.0
        assert report.mean_dissymmetry == 0.0
        assert report.meets_bound(0.0)

    def test_table_rendering(self):
        report = evaluate_capacitance_map({"a_b0": [10.0, 30.0]}, design_name="X")
        table = report.as_table()
        assert "a_b0" in table and "2.00" in table

    def test_compare_reports_renders_both(self):
        flat = evaluate_capacitance_map({"c_b0": [10.0, 30.0]}, design_name="flat")
        hier = evaluate_capacitance_map({"c_b0": [10.0, 11.0]}, design_name="hier")
        text = compare_reports(flat, hier)
        assert "flat" in text and "hier" in text
