"""Tests of the channel dissymmetry criterion of Section VI."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import Netlist, build_xor_bank
from repro.core import (
    CriterionError,
    channel_dissymmetry,
    compare_reports,
    evaluate_capacitance_map,
    evaluate_netlist_channels,
)


class TestChannelDissymmetry:
    def test_paper_definition(self):
        """d_A = |Cl0 - Cl1| / min(Cl0, Cl1)."""
        assert channel_dissymmetry([20.0, 45.0]) == pytest.approx(25.0 / 20.0)
        assert channel_dissymmetry([46.0, 23.0]) == pytest.approx(1.0)

    def test_balanced_channel_is_zero(self):
        assert channel_dissymmetry([12.0, 12.0]) == pytest.approx(0.0)

    def test_one_of_n_uses_spread(self):
        assert channel_dissymmetry([10.0, 12.0, 20.0]) == pytest.approx(1.0)

    def test_zero_capacitance_gives_infinity(self):
        assert channel_dissymmetry([0.0, 5.0]) == float("inf")
        assert channel_dissymmetry([0.0, 0.0]) == 0.0

    def test_invalid_inputs(self):
        with pytest.raises(CriterionError):
            channel_dissymmetry([5.0])
        with pytest.raises(CriterionError):
            channel_dissymmetry([-1.0, 2.0])

    @given(st.lists(st.floats(min_value=0.1, max_value=1000.0), min_size=2, max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_nonnegative_property(self, caps):
        assert channel_dissymmetry(caps) >= 0.0

    @given(st.floats(min_value=0.1, max_value=100.0),
           st.floats(min_value=0.1, max_value=100.0))
    @settings(max_examples=50, deadline=None)
    def test_symmetry_property(self, a, b):
        assert channel_dissymmetry([a, b]) == pytest.approx(channel_dissymmetry([b, a]))

    @given(st.floats(min_value=0.1, max_value=100.0),
           st.floats(min_value=0.1, max_value=100.0),
           st.floats(min_value=0.1, max_value=10.0))
    @settings(max_examples=50, deadline=None)
    def test_scale_invariance_property(self, a, b, scale):
        """The criterion is a ratio: scaling both rails leaves it unchanged."""
        assert channel_dissymmetry([a * scale, b * scale]) == pytest.approx(
            channel_dissymmetry([a, b]), rel=1e-6
        )


class TestReports:
    def test_capacitance_map_report(self):
        report = evaluate_capacitance_map({
            "core/hb_b25": [23.0, 46.0],
            "core/dmux_b6": [103.0, 110.0],
            "key/fifo_b3": [30.0, 30.0],
        }, design_name="AES_v2")
        assert len(report) == 3
        assert report.max_dissymmetry == pytest.approx(1.0)
        worst = report.worst(1)[0]
        assert worst.channel == "core/hb_b25"
        assert worst.bit == 25
        assert report.channels_above(0.5)[0].channel == "core/hb_b25"
        assert not report.meets_bound(0.13)

    def test_netlist_report_uses_channel_annotations(self):
        bank = build_xor_bank(4, "w")
        report = evaluate_netlist_channels(bank.netlist)
        # Every bit XOR exposes three boundary channels (a, b, c).
        assert len(report) == 12
        assert all(len(c.rail_caps_ff) == 2 for c in report.channels)

    def test_report_detects_injected_imbalance(self):
        bank = build_xor_bank(2, "w")
        target = bank.bit(0).outputs[0]
        bank.netlist.set_routing_cap(target.rails[0], 50.0)
        report = evaluate_netlist_channels(bank.netlist)
        assert report.worst(1)[0].channel == target.name

    def test_empty_netlist_report(self):
        report = evaluate_netlist_channels(Netlist("empty"))
        assert len(report) == 0
        assert report.max_dissymmetry == 0.0
        assert report.mean_dissymmetry == 0.0
        assert report.meets_bound(0.0)

    def test_table_rendering(self):
        report = evaluate_capacitance_map({"a_b0": [10.0, 30.0]}, design_name="X")
        table = report.as_table()
        assert "a_b0" in table and "2.00" in table

    def test_compare_reports_renders_both(self):
        flat = evaluate_capacitance_map({"c_b0": [10.0, 30.0]}, design_name="flat")
        hier = evaluate_capacitance_map({"c_b0": [10.0, 11.0]}, design_name="hier")
        text = compare_reports(flat, hier)
        assert "flat" in text and "hier" in text


class TestVectorizedEquivalence:
    """The dense-matrix path must match the scalar oracle *exactly*."""

    def test_vector_matches_oracle_on_random_maps(self):
        import numpy as np

        from repro.core import dissymmetry_vector, pack_cap_matrix

        rng = __import__("random").Random(7)
        rows = [[rng.uniform(0.0, 100.0) for _ in range(rng.randint(2, 6))]
                for _ in range(200)]
        rows.append([0.0, 5.0])     # -> inf
        rows.append([0.0, 0.0])     # -> 0
        vector = dissymmetry_vector(pack_cap_matrix(rows))
        for caps, value in zip(rows, vector):
            assert value == channel_dissymmetry(caps)  # bit-identical
        assert np.isinf(vector[-2]) and vector[-1] == 0.0

    def test_netlist_report_matches_oracle_across_block_library(self):
        """Exact equivalence over the QDI block library's channel netlists."""
        from repro.circuits import build_dual_rail_xor, build_half_buffer

        designs = [build_xor_bank(4, "veq").netlist,
                   build_dual_rail_xor("veqx").netlist,
                   build_half_buffer("veqh").netlist]
        rng = __import__("random").Random(3)
        for netlist in designs:
            for net in netlist.nets():
                if net.channel is not None:
                    netlist.set_routing_cap(net.name, rng.uniform(0.0, 50.0))
            report = evaluate_netlist_channels(netlist)
            assert len(report) > 0
            for entry in report.channels:
                assert entry.dissymmetry == channel_dissymmetry(
                    entry.rail_caps_ff)
        # And the aggregates equal the scalar reductions.
            values = [channel_dissymmetry(c.rail_caps_ff)
                      for c in report.channels]
            assert report.max_dissymmetry == max(values)
            assert report.mean_dissymmetry == pytest.approx(
                sum(values) / len(values))

    def test_capacitance_map_matches_oracle(self):
        report = evaluate_capacitance_map({
            "a_b0": [10.0, 30.0, 15.0],
            "b_b1": [1e-12, 3e-12],
            "c_b2": [0.0, 4.0],
        })
        for entry in report.channels:
            assert entry.dissymmetry == channel_dissymmetry(entry.rail_caps_ff)

    def test_dense_views_expose_matrix_and_vector(self):
        import numpy as np

        report = evaluate_capacitance_map({
            "a_b0": [10.0, 30.0],
            "b_b1": [5.0, 5.0, 5.0],
        })
        matrix = report.cap_matrix()
        assert matrix.shape == (2, 3)
        assert np.isnan(matrix[0, 2])  # narrow channel is NaN-padded
        vector = report.dissymmetries()
        assert vector.shape == (2,)
        assert report.violation_count(1.0) == 1


class TestDeterministicTieBreaking:
    """Equal criteria must rank by channel name, whatever the dict order."""

    CAPS = {
        "z_late": [10.0, 20.0],     # dA = 1.0
        "a_early": [30.0, 60.0],    # dA = 1.0 (tie)
        "m_mid": [10.0, 15.0],      # dA = 0.5
        "k_clean": [10.0, 10.0],    # dA = 0.0
    }

    def test_worst_breaks_ties_by_name(self):
        report = evaluate_capacitance_map(self.CAPS)
        assert [c.channel for c in report.worst(3)] == [
            "a_early", "z_late", "m_mid"]

    def test_order_is_independent_of_insertion_order(self):
        forward = evaluate_capacitance_map(dict(self.CAPS))
        reversed_map = dict(reversed(list(self.CAPS.items())))
        backward = evaluate_capacitance_map(reversed_map)
        assert ([c.channel for c in forward.worst(10)]
                == [c.channel for c in backward.worst(10)])
        assert ([c.channel for c in forward.channels_above(0.1)]
                == [c.channel for c in backward.channels_above(0.1)])

    def test_channels_above_is_worst_first_with_name_ties(self):
        report = evaluate_capacitance_map(self.CAPS)
        assert [c.channel for c in report.channels_above(0.0)] == [
            "a_early", "z_late", "m_mid"]

    def test_infinite_dissymmetry_ranks_first_and_is_never_averaged_away(self):
        import math

        report = evaluate_capacitance_map({
            "b_zero": [0.0, 5.0],
            "a_zero": [0.0, 7.0],
            "c_big": [1.0, 1000.0],
        })
        assert [c.channel for c in report.worst(2)] == ["a_zero", "b_zero"]
        assert math.isinf(report.max_dissymmetry)
        assert math.isinf(report.mean_dissymmetry)
        assert not report.meets_bound(1e12)
        assert len(report.channels_above(1e12)) == 2
