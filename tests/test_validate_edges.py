"""Edge cases of :mod:`repro.circuits.validate`.

The protocol checkers are replay analyses over recorded traces; these tests
pin their behaviour on the degenerate inputs a campaign can produce — empty
traces, NULL-only traces, channels the trace never mentions — and on
hand-built unbalanced blocks.
"""

import pytest

from repro.circuits.builder import QDIBlock
from repro.circuits.channels import ChannelNets, ChannelSpec
from repro.circuits.netlist import Netlist
from repro.circuits.signals import Logic, TraceRecord, Transition, TransitionKind
from repro.circuits.validate import (
    BalanceError,
    check_one_hot_discipline,
    check_structural_balance,
    count_valid_phases,
    verify_netlist,
)


def _channel(name: str = "c", radix: int = 2) -> ChannelNets:
    spec = ChannelSpec(name=name, radix=radix)
    return ChannelNets(spec=spec, rails=spec.rail_names, ack=spec.ack_name)


def _rising(net: str, time: float) -> Transition:
    return Transition(net=net, time=time, value=Logic.HIGH,
                      kind=TransitionKind.RISING)


def _falling(net: str, time: float) -> Transition:
    return Transition(net=net, time=time, value=Logic.LOW,
                      kind=TransitionKind.FALLING)


class TestTraceEdgeCases:
    def test_empty_trace_is_silent(self):
        trace = TraceRecord()
        channel = _channel()
        assert check_one_hot_discipline(trace, channel) == []
        assert count_valid_phases(trace, channel) == 0

    def test_null_only_trace_counts_zero_phases(self):
        # The rails only ever fall (reset activity): never a valid phase,
        # never an illegal code.
        trace = TraceRecord(transitions=[
            _falling("c_r0", 1e-9), _falling("c_r1", 2e-9)], end_time=3e-9)
        channel = _channel()
        assert check_one_hot_discipline(trace, channel) == []
        assert count_valid_phases(trace, channel) == 0

    def test_foreign_nets_are_ignored(self):
        trace = TraceRecord(transitions=[
            _rising("other_r0", 1e-9), _rising("other_r1", 2e-9)],
            end_time=3e-9)
        channel = _channel()
        assert check_one_hot_discipline(trace, channel) == []
        assert count_valid_phases(trace, channel) == 0

    def test_single_rail_channel_spec_is_rejected(self):
        with pytest.raises(ValueError, match="N >= 2"):
            ChannelSpec(name="mono", radix=1)

    def test_one_live_rail_still_obeys_the_discipline(self):
        # Only rail 0 ever moves; the channel is a legal (if boring)
        # dual-rail channel transmitting the same value every phase.
        trace = TraceRecord(transitions=[
            _rising("c_r0", 1e-9), _falling("c_r0", 2e-9),
            _rising("c_r0", 3e-9), _falling("c_r0", 4e-9)], end_time=5e-9)
        channel = _channel()
        assert check_one_hot_discipline(trace, channel) == []
        assert count_valid_phases(trace, channel) == 2

    def test_two_hot_code_is_reported_with_time_and_net(self):
        trace = TraceRecord(transitions=[
            _rising("c_r0", 1e-9), _rising("c_r1", 2e-9),
            _falling("c_r0", 3e-9)], end_time=4e-9)
        violations = check_one_hot_discipline(trace, _channel())
        assert len(violations) == 1
        assert "'c'" in violations[0]
        assert "c_r1" in violations[0] and "HIGH" in violations[0]
        # The two-hot plateau is one excursion, not two.
        assert count_valid_phases(trace, _channel()) == 1

    def test_back_to_back_valid_without_null_counts_once(self):
        # r0 high, then r1 high while r0 falls at the same replay order —
        # the channel never returns to NULL, so only the first excursion
        # counts as a new phase.
        trace = TraceRecord(transitions=[
            _rising("c_r0", 1e-9),
            _falling("c_r0", 2e-9), _rising("c_r1", 2e-9),
            _falling("c_r1", 3e-9)], end_time=4e-9)
        count = count_valid_phases(trace, _channel())
        assert count == 2  # NULL gap at t=2e-9 exists in replay order
        shuffled = TraceRecord(transitions=[
            _rising("c_r0", 1e-9),
            _rising("c_r1", 2e-9), _falling("c_r0", 2.5e-9),
            _falling("c_r1", 3e-9)], end_time=4e-9)
        assert count_valid_phases(shuffled, _channel()) == 1


class TestStructuralBalance:
    def _block(self, cones, levels) -> QDIBlock:
        netlist = Netlist("blk")
        spec = ChannelSpec(name="z", radix=2)
        channel = ChannelNets(spec=spec, rails=spec.rail_names,
                              ack=spec.ack_name)
        return QDIBlock(name="blk", netlist=netlist, outputs=[channel],
                        level_of_instance=levels, rail_cones=cones)

    def test_balanced_cones_are_clean(self):
        block = self._block(
            cones={"z_r0": ["a1", "a2"], "z_r1": ["b1", "b2"]},
            levels={"a1": 1, "a2": 2, "b1": 1, "b2": 2})
        assert check_structural_balance(block) == []

    def test_level_mismatch_is_reported(self):
        block = self._block(
            cones={"z_r0": ["a1", "a2"], "z_r1": ["b1"]},
            levels={"a1": 1, "a2": 2, "b1": 1})
        problems = check_structural_balance(block)
        assert len(problems) == 1
        assert "different levels" in problems[0]

    def test_gate_count_mismatch_is_reported(self):
        block = self._block(
            cones={"z_r0": ["a1"], "z_r1": ["b1", "b2"]},
            levels={"a1": 1, "b1": 1, "b2": 1})
        problems = check_structural_balance(block)
        assert len(problems) == 1
        assert "1 gate(s)" in problems[0] and "2 on rail" in problems[0]

    def test_block_without_outputs_is_trivially_balanced(self):
        block = QDIBlock(name="empty", netlist=Netlist("empty"))
        assert check_structural_balance(block) == []

    def test_empty_cones_are_balanced(self):
        # A channel at the block boundary driven straight by ports: both
        # cones empty, hence symmetric.
        block = self._block(cones={}, levels={})
        assert check_structural_balance(block) == []


class TestVerifyNetlist:
    def test_clean_netlist_verifies(self):
        netlist = Netlist("ok")
        netlist.add_input("a")
        netlist.add_instance("g", "INV", {"A": "a", "Z": "y"})
        netlist.add_output("y")
        verify_netlist(netlist)  # must not raise

    def test_structural_problem_raises_balance_error(self):
        netlist = Netlist("bad")
        netlist.add_instance("g", "INV", {"A": "x", "Z": "y"})
        with pytest.raises(BalanceError):
            verify_netlist(netlist)
