"""Tests of the AES reference implementation against FIPS-197."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import (
    AES,
    AESError,
    INV_SBOX,
    SBOX,
    aes_decrypt,
    aes_encrypt,
    bytes_to_state,
    gf_inverse,
    gf_mul,
    inv_mix_columns,
    inv_shift_rows,
    inv_sub_bytes,
    key_expansion,
    mix_columns,
    shift_rows,
    state_to_bytes,
    sub_bytes,
)

FIPS_KEY = [0x2B, 0x7E, 0x15, 0x16, 0x28, 0xAE, 0xD2, 0xA6,
            0xAB, 0xF7, 0x15, 0x88, 0x09, 0xCF, 0x4F, 0x3C]
FIPS_PLAINTEXT = [0x32, 0x43, 0xF6, 0xA8, 0x88, 0x5A, 0x30, 0x8D,
                  0x31, 0x31, 0x98, 0xA2, 0xE0, 0x37, 0x07, 0x34]
FIPS_CIPHERTEXT = [0x39, 0x25, 0x84, 0x1D, 0x02, 0xDC, 0x09, 0xFB,
                   0xDC, 0x11, 0x85, 0x97, 0x19, 0x6A, 0x0B, 0x32]

C1_PLAINTEXT = [0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77,
                0x88, 0x99, 0xAA, 0xBB, 0xCC, 0xDD, 0xEE, 0xFF]


class TestGaloisField:
    def test_known_products(self):
        assert gf_mul(0x57, 0x83) == 0xC1
        assert gf_mul(0x57, 0x13) == 0xFE

    def test_inverse(self):
        assert gf_inverse(0) == 0
        for value in (1, 2, 0x53, 0xCA, 0xFF):
            assert gf_mul(value, gf_inverse(value)) == 1


class TestSbox:
    def test_reference_entries(self):
        assert SBOX[0x00] == 0x63
        assert SBOX[0x53] == 0xED
        assert SBOX[0xFF] == 0x16

    def test_inverse_sbox_consistent(self):
        for value in range(256):
            assert INV_SBOX[SBOX[value]] == value

    def test_sbox_is_a_permutation(self):
        assert sorted(SBOX) == list(range(256))


class TestRoundOperations:
    def test_shift_rows_roundtrip(self):
        state = bytes_to_state(list(range(16)))
        assert inv_shift_rows(shift_rows(state)) == state

    def test_mix_columns_roundtrip(self):
        state = bytes_to_state(list(range(16)))
        assert inv_mix_columns(mix_columns(state)) == state

    def test_sub_bytes_roundtrip(self):
        state = bytes_to_state(list(range(16)))
        assert inv_sub_bytes(sub_bytes(state)) == state

    def test_state_conversion_roundtrip(self):
        block = list(range(16))
        assert state_to_bytes(bytes_to_state(block)) == block

    def test_mix_columns_known_column(self):
        """FIPS-197 example column: db 13 53 45 -> 8e 4d a1 bc."""
        state = bytes_to_state([0xDB, 0x13, 0x53, 0x45] + [0] * 12)
        mixed = mix_columns(state)
        assert state_to_bytes(mixed)[:4] == [0x8E, 0x4D, 0xA1, 0xBC]


class TestKeyExpansion:
    def test_round_key_count(self):
        assert len(key_expansion(FIPS_KEY)) == 11
        assert len(key_expansion(list(range(24)))) == 13
        assert len(key_expansion(list(range(32)))) == 15

    def test_first_round_key_is_cipher_key(self):
        assert key_expansion(FIPS_KEY)[0] == FIPS_KEY

    def test_fips_appendix_a_last_word(self):
        """Appendix A.1: w43 = b6 63 0c a6."""
        round_keys = key_expansion(FIPS_KEY)
        assert round_keys[10][12:16] == [0xB6, 0x63, 0x0C, 0xA6]

    def test_bad_key_length(self):
        with pytest.raises(AESError):
            key_expansion([0] * 15)


class TestCipher:
    def test_fips_appendix_b_vector(self):
        assert aes_encrypt(FIPS_PLAINTEXT, FIPS_KEY) == FIPS_CIPHERTEXT

    def test_fips_c1_vector(self):
        key = list(range(16))
        expected = [0x69, 0xC4, 0xE0, 0xD8, 0x6A, 0x7B, 0x04, 0x30,
                    0xD8, 0xCD, 0xB7, 0x80, 0x70, 0xB4, 0xC5, 0x5A]
        assert aes_encrypt(C1_PLAINTEXT, key) == expected

    def test_fips_c2_c3_vectors(self):
        expected_192 = [0xDD, 0xA9, 0x7C, 0xA4, 0x86, 0x4C, 0xDF, 0xE0,
                        0x6E, 0xAF, 0x70, 0xA0, 0xEC, 0x0D, 0x71, 0x91]
        expected_256 = [0x8E, 0xA2, 0xB7, 0xCA, 0x51, 0x67, 0x45, 0xBF,
                        0xEA, 0xFC, 0x49, 0x90, 0x4B, 0x49, 0x60, 0x89]
        assert aes_encrypt(C1_PLAINTEXT, list(range(24))) == expected_192
        assert aes_encrypt(C1_PLAINTEXT, list(range(32))) == expected_256

    def test_decrypt_inverts_encrypt(self):
        assert aes_decrypt(FIPS_CIPHERTEXT, FIPS_KEY) == FIPS_PLAINTEXT

    def test_bad_block_length(self):
        with pytest.raises(AESError):
            aes_encrypt([0] * 15, FIPS_KEY)

    @given(st.lists(st.integers(0, 255), min_size=16, max_size=16),
           st.lists(st.integers(0, 255), min_size=16, max_size=16))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, plaintext, key):
        cipher = AES(key)
        assert cipher.decrypt_block(cipher.encrypt_block(plaintext)) == plaintext


class TestRoundTrace:
    def test_trace_final_state_is_ciphertext(self):
        cipher = AES(FIPS_KEY)
        trace = cipher.encrypt_with_trace(FIPS_PLAINTEXT)
        assert trace.ciphertext == FIPS_CIPHERTEXT

    def test_initial_addkey_state(self):
        cipher = AES(FIPS_KEY)
        trace = cipher.encrypt_with_trace(FIPS_PLAINTEXT)
        expected = [p ^ k for p, k in zip(FIPS_PLAINTEXT, FIPS_KEY)]
        assert state_to_bytes(trace.initial_addkey) == expected

    def test_trace_has_all_rounds(self):
        cipher = AES(FIPS_KEY)
        trace = cipher.encrypt_with_trace(FIPS_PLAINTEXT)
        for round_index in range(1, 10):
            assert f"round{round_index}:mixcolumns" in trace.states
        assert "round10:shiftrows" in trace.states
        assert "round10:mixcolumns" not in trace.states

    def test_first_round_addkey_byte(self):
        cipher = AES(FIPS_KEY)
        value = cipher.first_round_addkey_byte(FIPS_PLAINTEXT, 5)
        assert value == FIPS_PLAINTEXT[5] ^ FIPS_KEY[5]
        with pytest.raises(AESError):
            cipher.first_round_addkey_byte(FIPS_PLAINTEXT, 16)
