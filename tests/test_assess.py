"""Tests of the streaming leakage-assessment subsystem (repro.assess).

Covers the mergeable moment accumulators (chunked updates and shard merges
against one-pass numpy references), the TVLA Welch t-tests (non-specific and
specific), the per-sample SNR, and the streaming DPA/CPA attack states
against their in-memory counterparts.
"""

import numpy as np
import pytest

from repro.assess import (
    AccumulatorError,
    ClassAccumulator,
    CoMomentAccumulator,
    DisclosureTracker,
    MomentAccumulator,
    StreamingSnr,
    StreamingTTest,
    TVLA_THRESHOLD,
    disclosure_boundaries,
    intermediate_labels,
    snr_by_intermediate,
    specific_labels,
    streaming_state,
    ttest_fixed_vs_random,
    ttest_specific,
)
from repro.asyncaes import fixed_vs_random_plaintexts
from repro.core import (
    AesSboxSelection,
    CpaKernel,
    DpaKernel,
    HammingWeightModel,
    SecondOrderKernel,
    TraceSet,
    messages_to_disclosure,
    pearson_statistics,
)
from repro.core.dpa import DPAError, _bias_matrix
from repro.core.power_model import leakage_matrix
from repro.core.selection import selection_matrix
from repro.crypto.keys import PlaintextGenerator


def _random_matrix(n=120, m=30, seed=0):
    return np.random.default_rng(seed).normal(size=(n, m))


def _chunks(matrix, size):
    return [matrix[start:start + size] for start in range(0, len(matrix), size)]


# ------------------------------------------------------------- accumulators
class TestMomentAccumulator:
    @pytest.mark.parametrize("chunk_size", [1, 7, 40, 120])
    def test_chunked_matches_numpy(self, chunk_size):
        matrix = _random_matrix()
        acc = MomentAccumulator()
        for chunk in _chunks(matrix, chunk_size):
            acc.update(chunk)
        assert acc.count == len(matrix)
        assert np.allclose(acc.mean, matrix.mean(axis=0), rtol=1e-12)
        assert np.allclose(acc.variance(), matrix.var(axis=0, ddof=1), rtol=1e-12)
        assert np.allclose(acc.std(), matrix.std(axis=0, ddof=1), rtol=1e-12)

    def test_merge_equals_combined(self):
        matrix = _random_matrix(200)
        left = MomentAccumulator().update(matrix[:80])
        right = MomentAccumulator().update(matrix[80:])
        combined = left.merge(right)
        assert combined.count == 200
        assert np.allclose(combined.mean, matrix.mean(axis=0), rtol=1e-12)
        assert np.allclose(combined.variance(), matrix.var(axis=0, ddof=1),
                           rtol=1e-12)

    def test_merge_into_empty(self):
        matrix = _random_matrix(30)
        filled = MomentAccumulator().update(matrix)
        empty = MomentAccumulator()
        empty.merge(filled)
        assert empty.count == 30
        assert np.allclose(empty.mean, matrix.mean(axis=0))

    def test_single_row_update(self):
        acc = MomentAccumulator()
        acc.update(np.ones(5))
        assert acc.count == 1
        assert np.allclose(acc.variance(), 0.0)

    def test_width_mismatch_rejected(self):
        acc = MomentAccumulator().update(_random_matrix(4, 8))
        with pytest.raises(AccumulatorError):
            acc.update(_random_matrix(4, 9))

    def test_copy_is_independent(self):
        acc = MomentAccumulator().update(_random_matrix(10))
        duplicate = acc.copy()
        duplicate.update(_random_matrix(10, seed=1))
        assert acc.count == 10
        assert duplicate.count == 20


class TestClassAccumulator:
    @pytest.mark.parametrize("chunk_size", [1, 13, 200])
    def test_chunked_matches_per_class_numpy(self, chunk_size):
        rng = np.random.default_rng(3)
        matrix = rng.normal(size=(200, 12))
        labels = rng.integers(0, 5, size=200)
        acc = ClassAccumulator(5)
        for start in range(0, 200, chunk_size):
            acc.update(matrix[start:start + chunk_size],
                       labels[start:start + chunk_size])
        for label in range(5):
            rows = matrix[labels == label]
            assert acc.counts[label] == len(rows)
            assert np.allclose(acc.means[label], rows.mean(axis=0), rtol=1e-12)
            assert np.allclose(acc.variances()[label],
                               rows.var(axis=0, ddof=1), rtol=1e-10)

    def test_merge_equals_combined(self):
        rng = np.random.default_rng(4)
        matrix = rng.normal(size=(150, 6))
        labels = rng.integers(0, 3, size=150)
        left = ClassAccumulator(3).update(matrix[:70], labels[:70])
        right = ClassAccumulator(3).update(matrix[70:], labels[70:])
        left.merge(right)
        one_pass = ClassAccumulator(3).update(matrix, labels)
        assert np.array_equal(left.counts, one_pass.counts)
        assert np.allclose(left.means, one_pass.means, rtol=1e-12)
        assert np.allclose(left.m2s, one_pass.m2s, rtol=1e-9, atol=1e-12)

    def test_grand_mean(self):
        rng = np.random.default_rng(5)
        matrix = rng.normal(size=(90, 4))
        labels = rng.integers(0, 4, size=90)
        acc = ClassAccumulator(4).update(matrix, labels)
        assert np.allclose(acc.grand_mean(), matrix.mean(axis=0), rtol=1e-12)

    def test_out_of_range_labels_rejected(self):
        acc = ClassAccumulator(2)
        with pytest.raises(AccumulatorError):
            acc.update(np.zeros((3, 4)), [0, 1, 2])

    def test_label_count_mismatch_rejected(self):
        with pytest.raises(AccumulatorError):
            ClassAccumulator(2).update(np.zeros((3, 4)), [0, 1])


class TestCoMomentAccumulator:
    @pytest.mark.parametrize("chunk_size", [1, 17, 300])
    def test_correlation_matches_pearson(self, chunk_size):
        rng = np.random.default_rng(6)
        matrix = rng.normal(size=(300, 10))
        hypothesis = rng.normal(size=(8, 300))
        reference = pearson_statistics(matrix, hypothesis)
        acc = CoMomentAccumulator()
        for start in range(0, 300, chunk_size):
            acc.update(hypothesis[:, start:start + chunk_size],
                       matrix[start:start + chunk_size])
        assert np.allclose(acc.correlation(), reference, atol=1e-12)

    def test_merge_equals_combined(self):
        rng = np.random.default_rng(7)
        matrix = rng.normal(size=(160, 5))
        hypothesis = rng.normal(size=(4, 160))
        left = CoMomentAccumulator().update(hypothesis[:, :60], matrix[:60])
        right = CoMomentAccumulator().update(hypothesis[:, 60:], matrix[60:])
        left.merge(right)
        assert np.allclose(left.correlation(),
                           pearson_statistics(matrix, hypothesis), atol=1e-12)

    def test_constant_rows_give_zero(self):
        matrix = np.ones((50, 3))
        hypothesis = np.zeros((2, 50))
        acc = CoMomentAccumulator().update(hypothesis, matrix)
        assert np.array_equal(acc.correlation(), np.zeros((2, 3)))


# --------------------------------------------------------------------- TVLA
class TestWelchTTest:
    def _populations(self, shift=0.0, n=200, m=16, seed=8):
        rng = np.random.default_rng(seed)
        pop0 = rng.normal(0.0, 1.0, (n, m))
        pop1 = rng.normal(0.0, 1.0, (n, m))
        pop1[:, 3] += shift
        return pop0, pop1

    def test_t_statistic_matches_direct_formula(self):
        pop0, pop1 = self._populations(shift=0.5)
        ttest = StreamingTTest()
        ttest.update(pop0, np.zeros(len(pop0), dtype=int))
        ttest.update(pop1, np.ones(len(pop1), dtype=int))
        expected = (pop0.mean(axis=0) - pop1.mean(axis=0)) / np.sqrt(
            pop0.var(axis=0, ddof=1) / len(pop0)
            + pop1.var(axis=0, ddof=1) / len(pop1)
        )
        assert np.allclose(ttest.t_statistic(), expected, rtol=1e-10)

    def test_detects_planted_leak_and_clears_null(self):
        pop0, pop1 = self._populations(shift=1.0)
        matrix = np.vstack([pop0, pop1])
        labels = np.r_[np.zeros(len(pop0)), np.ones(len(pop1))].astype(int)
        leaky = ttest_fixed_vs_random(TraceSet.from_matrix(
            matrix, [[0]] * len(matrix), 1e-9), labels)
        assert leaky.leaks and leaky.max_abs_t > TVLA_THRESHOLD
        assert int(np.argmax(np.abs(leaky.t))) == 3

        pop0, pop1 = self._populations(shift=0.0)
        matrix = np.vstack([pop0, pop1])
        null = ttest_fixed_vs_random(TraceSet.from_matrix(
            matrix, [[0]] * len(matrix), 1e-9), labels)
        assert not null.leaks

    def test_chunked_equals_single_update(self):
        pop0, pop1 = self._populations(shift=0.3)
        matrix = np.vstack([pop0, pop1])
        rng = np.random.default_rng(9)
        order = rng.permutation(len(matrix))
        matrix = matrix[order]
        labels = np.r_[np.zeros(len(pop0)), np.ones(len(pop1))][order].astype(int)
        one = StreamingTTest().update(matrix, labels).t_statistic()
        chunked = StreamingTTest()
        for start in range(0, len(matrix), 23):
            chunked.update(matrix[start:start + 23], labels[start:start + 23])
        assert np.allclose(chunked.t_statistic(), one, atol=1e-10)

    def test_merge_equals_combined(self):
        pop0, pop1 = self._populations(shift=0.3)
        matrix = np.vstack([pop0, pop1])
        labels = np.r_[np.zeros(len(pop0)), np.ones(len(pop1))].astype(int)
        left = StreamingTTest().update(matrix[:150], labels[:150])
        right = StreamingTTest().update(matrix[150:], labels[150:])
        left.merge(right)
        combined = StreamingTTest().update(matrix, labels)
        assert np.allclose(left.t_statistic(), combined.t_statistic(),
                           atol=1e-10)
        assert left.counts == combined.counts

    def test_too_few_traces_rejected(self):
        ttest = StreamingTTest().update(np.zeros((2, 4)), [0, 1])
        with pytest.raises(AccumulatorError):
            ttest.t_statistic()

    def test_early_curve_boundary_is_skipped_not_fatal(self):
        """A boundary before both populations hold >= 2 traces must not
        abort the assessment — the undefined point is simply not recorded."""
        pop0, pop1 = self._populations(shift=0.5)
        matrix = np.empty((400, pop0.shape[1]))
        matrix[0::2] = pop0
        matrix[1::2] = pop1
        labels = np.arange(400) % 2
        traces = TraceSet.from_matrix(matrix, [[0]] * 400, 1e-9)
        result = ttest_fixed_vs_random(traces.iter_chunks(2), labels,
                                       curve_boundaries=[2, 200, 400])
        assert [count for count, _ in result.curve] == [200, 400]
        assert result.trace_count == 400

    def test_merge_drops_prefix_curves(self):
        """Detection curves are order-dependent prefix statistics and do not
        survive a shard merge; the merged statistic itself stays exact."""
        pop0, pop1 = self._populations(shift=0.5)
        matrix = np.vstack([pop0, pop1])
        labels = np.r_[np.zeros(len(pop0)), np.ones(len(pop1))].astype(int)
        left = StreamingTTest().update(matrix[:200], labels[:200])
        left.record_curve_point()
        right = StreamingTTest().update(matrix[200:], labels[200:])
        right.record_curve_point()
        left.merge(right)
        assert left.result().curve == []
        combined = StreamingTTest().update(matrix, labels)
        assert np.allclose(left.t_statistic(), combined.t_statistic(),
                           atol=1e-10)

    def test_curve_records_boundaries(self):
        pop0, pop1 = self._populations(shift=1.0)
        matrix = np.empty((400, pop0.shape[1]))
        matrix[0::2] = pop0
        matrix[1::2] = pop1
        labels = np.arange(400) % 2
        traces = TraceSet.from_matrix(matrix, [[0]] * 400, 1e-9)
        result = ttest_fixed_vs_random(traces, labels,
                                       curve_boundaries=[100, 200, 300, 400])
        assert [count for count, _ in result.curve] == [100, 200, 300, 400]
        # More traces sharpen the planted leak.
        assert result.curve[-1][1] > result.curve[0][1]
        assert result.curve[-1][1] == pytest.approx(result.max_abs_t)

    def test_curve_streaming_matches_in_memory(self):
        pop0, pop1 = self._populations(shift=0.6)
        matrix = np.empty((400, pop0.shape[1]))
        matrix[0::2] = pop0
        matrix[1::2] = pop1
        labels = np.arange(400) % 2
        traces = TraceSet.from_matrix(matrix, [[0]] * 400, 1e-9)
        boundaries = [128, 256, 400]
        full = ttest_fixed_vs_random(traces, labels,
                                     curve_boundaries=boundaries)
        chunked = ttest_fixed_vs_random(traces.iter_chunks(96), labels,
                                        curve_boundaries=boundaries)
        assert [c for c, _ in chunked.curve] == [c for c, _ in full.curve]
        for (_, a), (_, b) in zip(full.curve, chunked.curve):
            assert a == pytest.approx(b, abs=1e-9)


class TestSpecificTTest:
    KEY_BYTE = 0x3C

    def _leaky_traces(self, n=400, seed=10):
        """Traces whose sample 5 leaks the selection bit directly."""
        selection = AesSboxSelection(byte_index=0, bit_index=2)
        plaintexts = PlaintextGenerator(seed=seed).batch(n)
        bits = selection_matrix(selection, plaintexts, [self.KEY_BYTE])[0]
        rng = np.random.default_rng(seed + 1)
        matrix = rng.normal(0.0, 1.0, (n, 12))
        matrix[:, 5] += 2.0 * bits
        return TraceSet.from_matrix(matrix, plaintexts, 1e-9), selection, bits

    def test_partition_labels_match_selection(self):
        traces, selection, bits = self._leaky_traces()
        labels = specific_labels(selection, traces.plaintexts(), self.KEY_BYTE)
        assert np.array_equal(labels, bits)

    def test_detects_intermediate_leak(self):
        traces, selection, _ = self._leaky_traces()
        result = ttest_specific(traces, selection, self.KEY_BYTE)
        assert result.leaks
        assert int(np.argmax(np.abs(result.t))) == 5
        assert result.partition.startswith("specific[")

    def test_chunked_equals_full(self):
        traces, selection, _ = self._leaky_traces()
        full = ttest_specific(traces, selection, self.KEY_BYTE)
        chunked = ttest_specific(traces.iter_chunks(64), selection,
                                 self.KEY_BYTE)
        assert np.allclose(full.t, chunked.t, atol=1e-10)
        assert (full.n0, full.n1) == (chunked.n0, chunked.n1)


# ---------------------------------------------------------------------- SNR
class TestSnr:
    def test_known_partition_snr(self):
        """Class means ±1 with unit noise: SNR ≈ 1 at the leaky sample."""
        rng = np.random.default_rng(11)
        labels = rng.integers(0, 2, size=4000)
        matrix = rng.normal(0.0, 1.0, (4000, 8))
        matrix[:, 2] += np.where(labels == 1, 1.0, -1.0)
        snr = StreamingSnr(2).update(matrix, labels).result()
        assert snr.snr[2] == pytest.approx(1.0, rel=0.15)
        quiet = np.delete(snr.snr, 2)
        assert quiet.max() < 0.01
        assert snr.max_snr == pytest.approx(snr.snr[2])
        assert snr.peak_sample == 2

    def test_streaming_and_merge_match_one_pass(self):
        rng = np.random.default_rng(12)
        labels = rng.integers(0, 9, size=600)
        matrix = rng.normal(0.0, 1.0, (600, 6))
        matrix[:, 4] += 0.5 * labels
        one = StreamingSnr(9).update(matrix, labels).snr()
        chunked = StreamingSnr(9)
        for start in range(0, 600, 37):
            chunked.update(matrix[start:start + 37], labels[start:start + 37])
        assert np.allclose(chunked.snr(), one, atol=1e-10)
        left = StreamingSnr(9).update(matrix[:250], labels[:250])
        right = StreamingSnr(9).update(matrix[250:], labels[250:])
        assert np.allclose(left.merge(right).snr(), one, atol=1e-10)

    def test_intermediate_labels_value_and_hw(self):
        selection = AesSboxSelection(byte_index=1, bit_index=0)
        plaintexts = PlaintextGenerator(seed=13).batch(50)
        values = intermediate_labels(selection, plaintexts, 0xA7)
        expected = [selection.intermediate(p, 0xA7) for p in plaintexts]
        assert np.array_equal(values, expected)
        weights = intermediate_labels(selection, plaintexts, 0xA7, classes="hw")
        assert np.array_equal(weights, [bin(v).count("1") for v in expected])

    def test_snr_by_intermediate_finds_hw_leak(self):
        selection = AesSboxSelection(byte_index=0, bit_index=0)
        plaintexts = PlaintextGenerator(seed=14).batch(2000)
        weights = intermediate_labels(selection, plaintexts, 0x51, classes="hw")
        rng = np.random.default_rng(15)
        matrix = rng.normal(0.0, 0.5, (2000, 10))
        matrix[:, 7] += 0.4 * weights
        traces = TraceSet.from_matrix(matrix, plaintexts, 1e-9)
        result = snr_by_intermediate(traces, selection, 0x51, classes="hw")
        assert result.peak_sample == 7
        assert result.max_snr > 1.0
        chunked = snr_by_intermediate(traces.iter_chunks(256), selection,
                                      0x51, classes="hw")
        assert np.allclose(result.snr, chunked.snr, atol=1e-10)


# ------------------------------------------------------------- fixed/random
class TestFixedVsRandomSchedule:
    def test_alternate_schedule(self):
        plaintexts, labels = fixed_vs_random_plaintexts(10, seed=1)
        assert np.array_equal(labels, [0, 1] * 5)
        fixed_rows = [p for p, label in zip(plaintexts, labels) if label == 0]
        assert all(row == fixed_rows[0] for row in fixed_rows)
        random_rows = [tuple(p) for p, label in zip(plaintexts, labels) if label == 1]
        assert len(set(random_rows)) == len(random_rows)

    def test_reproducible_and_seed_sensitive(self):
        a = fixed_vs_random_plaintexts(8, seed=2)
        b = fixed_vs_random_plaintexts(8, seed=2)
        c = fixed_vs_random_plaintexts(8, seed=3)
        assert a[0] == b[0] and np.array_equal(a[1], b[1])
        assert a[0] != c[0]

    def test_explicit_fixed_block(self):
        fixed = list(range(16))
        plaintexts, labels = fixed_vs_random_plaintexts(6, fixed=fixed, seed=4)
        assert plaintexts[0] == fixed and plaintexts[2] == fixed

    def test_shuffled_mode_balanced(self):
        _, labels = fixed_vs_random_plaintexts(100, seed=5, mode="shuffled")
        assert labels.sum() == 50
        assert not np.array_equal(labels, np.arange(100) % 2)

    def test_bad_arguments_rejected(self):
        from repro.asyncaes import TraceGenerationError
        with pytest.raises(TraceGenerationError):
            fixed_vs_random_plaintexts(-1)
        with pytest.raises(TraceGenerationError):
            fixed_vs_random_plaintexts(4, fixed=[1, 2, 3])
        with pytest.raises(TraceGenerationError):
            fixed_vs_random_plaintexts(4, mode="sorted")


# ------------------------------------------------------- streaming attacks
class TestStreamingAttackStates:
    KEY_BYTE = 0x2B

    def _traces(self, n=300, seed=20):
        selection = AesSboxSelection(byte_index=0, bit_index=4)
        plaintexts = PlaintextGenerator(seed=seed).batch(n)
        bits = selection_matrix(selection, plaintexts, [self.KEY_BYTE])[0]
        rng = np.random.default_rng(seed + 1)
        matrix = rng.normal(0.0, 0.3, (n, 20))
        matrix[:, 11] += 0.4 * bits
        return TraceSet.from_matrix(matrix, plaintexts, 1e-9), selection

    @pytest.mark.parametrize("chunk_size", [32, 100, 300])
    def test_dom_state_matches_bias_matrix(self, chunk_size):
        traces, selection = self._traces()
        guess_space = list(range(64))
        bit_matrix = selection_matrix(selection, traces.plaintexts(), guess_space)
        reference, _ = _bias_matrix(traces.matrix(), bit_matrix)
        state = streaming_state(DpaKernel(selection), guess_space)
        for chunk in traces.iter_chunks(chunk_size):
            state.update(chunk.matrix(), chunk.plaintexts())
        assert np.allclose(state.statistics(), reference, atol=1e-12)
        assert np.allclose(state.peaks(), np.abs(reference).max(axis=1),
                           atol=1e-12)

    @pytest.mark.parametrize("chunk_size", [32, 100, 300])
    def test_cpa_state_matches_pearson(self, chunk_size):
        traces, selection = self._traces()
        model = HammingWeightModel(selection)
        guess_space = list(range(64))
        hypothesis = leakage_matrix(model, traces.plaintexts(), guess_space)
        reference = pearson_statistics(traces.matrix(), hypothesis)
        state = streaming_state(CpaKernel(model), guess_space)
        for chunk in traces.iter_chunks(chunk_size):
            state.update(chunk.matrix(), chunk.plaintexts())
        assert np.allclose(state.statistics(), reference, atol=1e-10)

    def test_dom_state_merge(self):
        traces, selection = self._traces()
        guess_space = list(range(16))
        full = streaming_state(DpaKernel(selection), guess_space)
        full.update(traces.matrix(), traces.plaintexts())
        left = streaming_state(DpaKernel(selection), guess_space)
        right = streaming_state(DpaKernel(selection), guess_space)
        left.update(traces.matrix()[:100], traces.plaintexts()[:100])
        right.update(traces.matrix()[100:], traces.plaintexts()[100:])
        left.merge(right)
        assert np.allclose(left.statistics(), full.statistics(), atol=1e-12)

    def test_second_order_rejected(self):
        _, selection = self._traces(n=10)
        kernel = SecondOrderKernel(DpaKernel(selection), window=2)
        with pytest.raises(DPAError, match="streaming"):
            streaming_state(kernel, list(range(4)))

    def test_custom_kernel_hook(self):
        class Custom:
            name = "custom"

            def stream_state(self, guess_space):
                return ("state", list(guess_space))

        assert streaming_state(Custom(), [1, 2]) == ("state", [1, 2])

    def test_disclosure_tracker_matches_in_memory_sweep(self):
        traces, selection = self._traces(n=280, seed=21)
        guess_space = list(selection.guesses())
        correct_index = guess_space.index(self.KEY_BYTE)
        for start, step, stable in ((16, 16, 1), (40, 40, 2), (20, 60, 3)):
            expected = messages_to_disclosure(
                traces, selection, self.KEY_BYTE,
                start=start, step=step, stable_runs=stable,
            )
            state = streaming_state(DpaKernel(selection), guess_space)
            tracker = DisclosureTracker(correct_index, stable_runs=stable)
            boundaries = disclosure_boundaries(len(traces), start=start,
                                               step=step)
            previous = 0
            matrix = traces.matrix()
            plaintexts = traces.plaintexts()
            for boundary in boundaries:
                state.update(matrix[previous:boundary],
                             plaintexts[previous:boundary])
                tracker.observe(boundary, state.peaks())
                previous = boundary
            assert tracker.disclosure == expected

    def test_disclosure_boundaries_validation(self):
        assert disclosure_boundaries(50, start=10, step=20) == [10, 30, 50]
        with pytest.raises(DPAError):
            disclosure_boundaries(50, start=1)
