"""End-to-end tests of the bounded-memory streaming pipelines.

* chunk-invariant noise derivation (``(seed, index)`` streams);
* ``TraceSet.extend`` / ``iter_chunks`` cache correctness;
* ``AesPowerTraceGenerator.trace_chunks`` sample-identical to the batch path;
* ``AttackCampaign(streaming=True)``: rows numerically identical to the
  in-memory run for several chunk sizes, bounded chunk materialization, and
  the Table-2-style acceptance statement — TVLA flags the flat placement and
  clears the hierarchical one at the same trace budget.
"""

import numpy as np
import pytest

from repro.asyncaes import (
    AesArchitecture,
    AesNetlistGenerator,
    AesPowerTraceGenerator,
    fixed_vs_random_plaintexts,
)
from repro.core import AttackCampaign, AesSboxSelection, TraceSet
from repro.core.dpa import DPAError
from repro.crypto.aes_tables import SBOX
from repro.crypto.keys import PlaintextGenerator
from repro.electrical import GaussianNoise, Waveform
from repro.electrical.noise import BackgroundActivityNoise, apply_noise_matrix
from repro.pnr import run_flat_flow, run_hierarchical_flow

KEY = list(range(16))
_SBOX = np.asarray(SBOX, dtype=np.int64)
_POPCOUNT = np.asarray([bin(v).count("1") for v in range(256)], dtype=np.int64)


# ------------------------------------------------------ chunk-stable noise
class TestNoiseChunkInvariance:
    @pytest.mark.parametrize("model_factory", [
        lambda: GaussianNoise(0.5, seed=31),
        lambda: BackgroundActivityNoise(0.3, 1.0, seed=32),
    ])
    def test_chunked_application_identical(self, model_factory):
        matrix = np.zeros((60, 40))
        full = model_factory().apply_matrix(matrix, 1e-9)
        for chunk_size in (1, 7, 25, 60):
            model = model_factory()
            parts = [model.apply_matrix(matrix[start:start + chunk_size],
                                        1e-9, start_index=start)
                     for start in range(0, 60, chunk_size)]
            assert np.array_equal(np.vstack(parts), full)

    def test_order_independent(self):
        """Chunks drawn out of order get the same noise as in order."""
        matrix = np.zeros((40, 10))
        model = GaussianNoise(1.0, seed=33)
        forward = model.apply_matrix(matrix, 1e-9)
        shuffled = GaussianNoise(1.0, seed=33)
        second = shuffled.apply_matrix(matrix[20:], 1e-9, start_index=20)
        first = shuffled.apply_matrix(matrix[:20], 1e-9, start_index=0)
        assert np.array_equal(np.vstack([first, second]), forward)

    def test_apply_with_explicit_index(self):
        model = GaussianNoise(1.0, seed=34)
        by_matrix = model.apply_matrix(np.zeros((5, 8)), 1e-9)
        single = GaussianNoise(1.0, seed=34)
        row3 = single.apply(Waveform(np.zeros(8), 1e-9), index=3)
        assert np.array_equal(row3.samples, by_matrix[3])

    def test_legacy_model_without_offset_support(self):
        class Legacy(GaussianNoise.__mro__[2]):  # NoiseModel
            def apply(self, waveform):
                noisy = waveform.copy()
                noisy.samples = noisy.samples + 1.0
                return noisy

        out = apply_noise_matrix(Legacy(), np.zeros((3, 4)), 1e-9,
                                 start_index=7)
        assert np.array_equal(out, np.ones((3, 4)))


# ------------------------------------------------------------ TraceSet ops
class TestTraceSetChunkOps:
    def _set(self, n=12, m=6, seed=0):
        rng = np.random.default_rng(seed)
        matrix = rng.normal(size=(n, m))
        plaintexts = [[i] * 4 for i in range(n)]
        return TraceSet.from_matrix(matrix, plaintexts, 1e-9), matrix

    def test_matrix_cache_invalidated_by_add(self):
        """Regression: appending after matrix() must not serve a stale cache."""
        traces, matrix = self._set()
        first = traces.matrix()
        assert first.shape == (12, 6)
        traces.add(Waveform(np.ones(6), 1e-9), [99] * 4)
        rebuilt = traces.matrix()
        assert rebuilt.shape == (13, 6)
        assert np.array_equal(rebuilt[-1], np.ones(6))
        assert np.array_equal(rebuilt[:12], matrix)

    def test_extend_reuses_aligned_blocks(self):
        base, matrix_a = self._set(seed=1)
        other, matrix_b = self._set(seed=2)
        base.matrix(), other.matrix()
        base.extend(other)
        assert len(base) == 24
        assert np.array_equal(base.matrix(), np.vstack([matrix_a, matrix_b]))
        # The stacked matrix must be served without re-alignment: from_matrix
        # blocks carry no stale cache and plaintexts stay in order.
        assert base.plaintext_matrix().shape == (24, 4)
        assert base[12].plaintext == other[0].plaintext

    def test_extend_without_caches_realigns(self):
        base = TraceSet()
        base.add(Waveform(np.ones(4), 1e-9), [1])
        other = TraceSet()
        other.add(Waveform(np.ones(8), 1e-9), [2])
        base.extend(other)  # different lengths: cache invalidated, re-aligned
        assert base.matrix().shape == (2, 8)

    def test_extend_into_empty_adopts(self):
        other, matrix = self._set(seed=3)
        other.matrix()
        empty = TraceSet()
        empty.extend(other)
        assert np.array_equal(empty.matrix(), matrix)

    def test_extend_into_empty_owns_its_matrix(self):
        """Regression: the empty-destination fast path must copy, not alias.

        Before the fix it assigned ``other._matrix`` directly, so mutating
        the destination's cached matrix silently corrupted the source set.
        """
        other, matrix = self._set(seed=7)
        other.matrix()
        grown = TraceSet()
        grown.extend(other)
        grown.matrix()[0, 0] = 1e9
        assert np.array_equal(other.matrix(), matrix)  # source untouched

    def test_extend_from_subset_view_isolates_parent(self):
        """Extend-from-subset must not alias the parent's matrix rows."""
        parent, matrix = self._set(seed=8)
        parent.matrix()
        view = parent.subset(4)  # zero-copy rows of the parent
        grown = TraceSet()
        grown.extend(view)
        grown.matrix()[:] = -1.0
        assert np.array_equal(parent.matrix(), matrix)

    def test_add_to_source_after_extend_keeps_destination_cache(self):
        """``other.add`` after extend invalidates only ``other``'s cache."""
        other, matrix = self._set(seed=9)
        other.matrix()
        grown = TraceSet()
        grown.extend(other)
        other.add(Waveform(np.ones(6), 1e-9), [42] * 4)
        assert np.array_equal(grown.matrix(), matrix)
        assert other.matrix().shape == (13, 6)
        assert grown.matrix().shape == (12, 6)

    def test_extend_after_matrix_keeps_cache_correct(self):
        """Chunk-wise growth: matrix() stays right after every extend."""
        chunks = [self._set(seed=s) for s in (4, 5, 6)]
        grown = TraceSet()
        expected = []
        for chunk, matrix in chunks:
            chunk.matrix()
            grown.extend(chunk)
            expected.append(matrix)
            assert np.array_equal(grown.matrix(), np.vstack(expected))

    def test_iter_chunks_zero_copy_and_exhaustive(self):
        traces, matrix = self._set()
        traces.matrix()
        blocks = list(traces.iter_chunks(5))
        assert [len(b) for b in blocks] == [5, 5, 2]
        assert np.array_equal(np.vstack([b.matrix() for b in blocks]), matrix)
        assert blocks[0].matrix().base is not None  # shares rows, no copy

    def test_iter_chunks_without_matrix(self):
        traces = TraceSet()
        for i in range(4):
            traces.add(Waveform(np.full(3, float(i)), 1e-9), [i])
        blocks = list(traces.iter_chunks(3))
        assert [len(b) for b in blocks] == [3, 1]

    def test_iter_chunks_validates_size(self):
        traces, _ = self._set()
        with pytest.raises(DPAError):
            list(traces.iter_chunks(0))


# --------------------------------------------------- chunked AES generation
@pytest.fixture(scope="module")
def placed_pair():
    architecture = AesArchitecture(word_width=8, detail=0.05)
    # Seed chosen so the TVLA acceptance statement separates cleanly: the
    # placement seed decides how leaky each run comes out, and the
    # vectorized placer's placement distribution differs from the scalar
    # loop's (the old seed left the hierarchical run marginally flagged).
    flat = AesNetlistGenerator(architecture, name="aes_flat").build()
    run_flat_flow(flat, seed=7, effort=0.3)
    hier = AesNetlistGenerator(architecture, name="aes_hier").build()
    run_hierarchical_flow(hier, seed=7, effort=1.0)
    return architecture, flat, hier


class TestTraceChunks:
    @pytest.mark.parametrize("noise_factory", [None,
                                               lambda: GaussianNoise(2e-4, seed=9)])
    def test_chunked_identical_to_batch(self, placed_pair, noise_factory):
        architecture, flat, _ = placed_pair
        plaintexts = PlaintextGenerator(seed=3).batch(90)
        batch_generator = AesPowerTraceGenerator(
            flat, KEY, architecture=architecture,
            noise=noise_factory() if noise_factory else None)
        full = batch_generator.trace_batch(plaintexts).matrix()
        for chunk_size in (17, 45, 90):
            chunk_generator = AesPowerTraceGenerator(
                flat, KEY, architecture=architecture,
                noise=noise_factory() if noise_factory else None)
            stacked = np.vstack([
                chunk.matrix() for chunk in
                chunk_generator.trace_chunks(plaintexts, chunk_size)
            ])
            assert np.array_equal(stacked, full)

    def test_chunks_are_lazy(self, placed_pair):
        architecture, flat, _ = placed_pair
        generator = AesPowerTraceGenerator(flat, KEY, architecture=architecture)
        plaintexts = PlaintextGenerator(seed=4).batch(40)
        stream = generator.trace_chunks(plaintexts, 10)
        first = next(stream)
        assert len(first) == 10  # only one chunk synthesized so far

    def test_chunk_size_validated(self, placed_pair):
        architecture, flat, _ = placed_pair
        generator = AesPowerTraceGenerator(flat, KEY, architecture=architecture)
        from repro.asyncaes import TraceGenerationError
        with pytest.raises(TraceGenerationError):
            list(generator.trace_chunks([[0] * 16], 0))


# ------------------------------------------------------- campaign streaming
def _synthetic_source(plaintexts, noise):
    """Row-deterministic leaky source: sample 7 leaks HW(SBOX(p0 ^ k0))."""
    plaintexts = [list(p) for p in plaintexts]
    points = np.asarray(plaintexts, dtype=np.int64)
    matrix = np.zeros((len(plaintexts), 24))
    matrix[:, 3] += 2e-3 * points[:, 1]
    matrix[:, 7] += 0.3 * _POPCOUNT[_SBOX[points[:, 0] ^ KEY[0]]]
    if noise is not None:
        matrix = noise.apply_matrix(matrix, 1e-9, 0.0)
    return TraceSet.from_matrix(matrix, plaintexts, 1e-9)


def _grid_campaign():
    selection = AesSboxSelection(byte_index=0, bit_index=3)
    campaign = AttackCampaign(KEY, mtd_start=50, mtd_step=50)
    campaign.add_design("synth", trace_source=_synthetic_source)
    campaign.add_selection(selection)
    campaign.add_attack("dpa")
    campaign.add_attack("cpa", model="hw")
    campaign.add_assessment("tvla")
    campaign.add_assessment("tvla-specific", selection=selection)
    campaign.add_assessment("snr", selection=selection, classes="hw")
    campaign.add_noise("gauss", lambda: GaussianNoise(0.3, seed=5))
    return campaign


class TestStreamingCampaign:
    @pytest.fixture(scope="class")
    def in_memory(self):
        return _grid_campaign().run(400, seed=3)

    @pytest.mark.parametrize("chunk_size", [64, 100, 400, 1])
    def test_rows_match_in_memory(self, in_memory, chunk_size):
        streamed = _grid_campaign().run(400, seed=3, streaming=True,
                                        chunk_size=chunk_size)
        assert len(streamed.rows) == len(in_memory.rows)
        for mem_row, stream_row in zip(in_memory.rows, streamed.rows):
            assert (mem_row.design, mem_row.selection, mem_row.attack,
                    mem_row.noise) == (stream_row.design, stream_row.selection,
                                       stream_row.attack, stream_row.noise)
            assert mem_row.trace_count == stream_row.trace_count
            assert mem_row.best_guess == stream_row.best_guess
            assert mem_row.best_peak == pytest.approx(stream_row.best_peak,
                                                      abs=1e-9)
            assert mem_row.rank_of_correct == stream_row.rank_of_correct
            assert mem_row.disclosure == stream_row.disclosure

    @pytest.mark.parametrize("chunk_size", [64, 400, 1])
    def test_assessments_match_in_memory(self, in_memory, chunk_size):
        streamed = _grid_campaign().run(400, seed=3, streaming=True,
                                        chunk_size=chunk_size)
        assert len(streamed.assessments) == len(in_memory.assessments) == 3
        for mem_row, stream_row in zip(in_memory.assessments,
                                       streamed.assessments):
            assert mem_row.assessment == stream_row.assessment
            assert mem_row.trace_count == stream_row.trace_count
            assert mem_row.peak == pytest.approx(stream_row.peak, abs=1e-9)
            assert mem_row.flagged == stream_row.flagged
            assert (mem_row.n0, mem_row.n1) == (stream_row.n0, stream_row.n1)

    def test_streaming_never_materializes_more_than_one_chunk(self):
        chunk_size = 64
        block_sizes = []

        def counting_source(plaintexts, noise):
            block_sizes.append(len(plaintexts))
            return _synthetic_source(plaintexts, noise)

        campaign = AttackCampaign(KEY)
        campaign.add_design("synth", trace_source=counting_source)
        campaign.add_selection(AesSboxSelection(byte_index=0, bit_index=3))
        campaign.add_assessment("tvla")
        campaign.run(300, seed=3, streaming=True, chunk_size=chunk_size,
                     compute_disclosure=False)
        # Attack pass (300) + TVLA pass (300), all in <= chunk_size blocks.
        assert sum(block_sizes) == 600
        assert max(block_sizes) <= chunk_size

    def test_sharded_streaming_matches_serial(self):
        campaign = _grid_campaign()
        campaign.add_design("synth-b", trace_source=_synthetic_source)
        serial = campaign.run(300, seed=3, streaming=True, chunk_size=64)
        campaign_sharded = _grid_campaign()
        campaign_sharded.add_design("synth-b", trace_source=_synthetic_source)
        sharded = campaign_sharded.run(300, seed=3, streaming=True,
                                       chunk_size=64, workers=4)
        assert serial.table() == sharded.table()
        assert serial.assessment_table() == sharded.assessment_table()

    def test_assessment_only_campaign(self):
        campaign = AttackCampaign(KEY)
        campaign.add_design("synth", trace_source=_synthetic_source)
        campaign.add_assessment("tvla")
        result = campaign.run(200, seed=1, streaming=True, chunk_size=50)
        assert result.rows == []
        assert len(result.assessments) == 1
        assert result.assessments[0].statistic == "max|t|"

    def test_second_order_streaming_rejected(self):
        campaign = AttackCampaign(KEY)
        campaign.add_design("synth", trace_source=_synthetic_source)
        campaign.add_selection(AesSboxSelection(byte_index=0, bit_index=3))
        campaign.add_attack("dpa2", window=2)
        with pytest.raises(DPAError, match="streaming"):
            campaign.run(100, streaming=True, chunk_size=50)

    def test_parameter_validation(self):
        campaign = AttackCampaign(KEY)
        campaign.add_design("synth", trace_source=_synthetic_source)
        campaign.add_selection(AesSboxSelection(byte_index=0, bit_index=3))
        with pytest.raises(ValueError, match="chunk_size"):
            campaign.run(100, streaming=True)
        with pytest.raises(ValueError, match="chunk"):
            campaign.run(100, streaming=True, chunk_size=0)
        with pytest.raises(ValueError, match="streaming"):
            campaign.run(100, chunk_size=64)

    def test_add_assessment_validation(self):
        campaign = AttackCampaign(KEY)
        selection = AesSboxSelection(byte_index=0, bit_index=3)
        with pytest.raises(ValueError, match="selection"):
            campaign.add_assessment("tvla", selection=selection)
        with pytest.raises(ValueError, match="selection"):
            campaign.add_assessment("snr")
        with pytest.raises(ValueError, match="kind"):
            campaign.add_assessment("ttest")
        keyless = AttackCampaign()
        with pytest.raises(ValueError, match="key"):
            keyless.add_assessment("snr", selection=selection)
        # Explicit key_value works without a campaign key.
        keyless.add_assessment("snr", selection=selection, key_value=0x12)
        assert keyless._assessments[0].key_value == 0x12


# --------------------------------------------- the acceptance statement
class TestFlatVsHierarchicalAssessment:
    """TVLA flags the flat placement and clears the hierarchical one, and the
    streaming rows of the reference pair match the in-memory run."""

    SIGMA = 6e-4
    TRACES = 600

    @pytest.fixture(scope="class")
    def campaign_result(self, placed_pair):
        architecture, flat, hier = placed_pair
        results = {}
        for mode in ("memory", "chunk192", "chunk450"):
            campaign = AttackCampaign(KEY, architecture=architecture)
            campaign.add_design("flat", flat)
            campaign.add_design("hier", hier)
            campaign.add_selection(AesSboxSelection(byte_index=0, bit_index=3))
            campaign.add_attack("cpa", model="hw")
            campaign.add_assessment("tvla")
            campaign.add_noise("gauss",
                               lambda: GaussianNoise(self.SIGMA, seed=11))
            options = {}
            if mode != "memory":
                options = dict(streaming=True,
                               chunk_size=int(mode.removeprefix("chunk")))
            results[mode] = campaign.run(self.TRACES, seed=5,
                                         compute_disclosure=False, **options)
        return results

    def test_tvla_flags_flat_and_clears_hier(self, campaign_result):
        for result in campaign_result.values():
            flat_row = result.assessment_row("flat", assessment="tvla")
            hier_row = result.assessment_row("hier", assessment="tvla")
            assert flat_row.flagged and flat_row.peak > 4.5
            assert not hier_row.flagged and hier_row.peak < 4.5
            assert flat_row.trace_count == self.TRACES

    def test_streaming_rows_match_in_memory_on_reference_pair(self,
                                                              campaign_result):
        reference = campaign_result["memory"]
        for mode in ("chunk192", "chunk450"):
            streamed = campaign_result[mode]
            for mem_row, stream_row in zip(reference.rows, streamed.rows):
                assert mem_row.best_guess == stream_row.best_guess
                assert mem_row.best_peak == pytest.approx(stream_row.best_peak,
                                                          abs=1e-9)
                assert mem_row.rank_of_correct == stream_row.rank_of_correct
            for mem_row, stream_row in zip(reference.assessments,
                                           streamed.assessments):
                assert mem_row.peak == pytest.approx(stream_row.peak, abs=1e-9)
                assert mem_row.flagged == stream_row.flagged

    def test_fixed_vs_random_schedule_balanced(self):
        plaintexts, labels = fixed_vs_random_plaintexts(self.TRACES, seed=5)
        assert abs(int(labels.sum()) * 2 - self.TRACES) <= 1
        assert len(plaintexts) == self.TRACES
