"""Tests of the four-phase handshake environment processes."""

import pytest

from repro.circuits import (
    ChannelMonitor,
    FourPhaseConsumer,
    FourPhaseProducer,
    Logic,
    Netlist,
    ProtocolError,
    ResetPulse,
    Simulator,
    build_dual_rail_xor,
    build_half_buffer,
    dual_rail,
)


class TestResetPulse:
    def test_pulse_shape(self):
        netlist = Netlist("rst")
        netlist.add_input("reset")
        netlist.add_instance("b", "BUF", {"A": "reset", "Z": "out"})
        sim = Simulator(netlist)
        sim.add_process(ResetPulse("reset", duration=1e-9))
        trace = sim.settle()
        reset_events = trace.transitions_for("reset")
        assert [t.value for t in reset_events] == [Logic.HIGH, Logic.LOW]
        assert reset_events[1].time == pytest.approx(1e-9)


class TestProducerConsumerOnXor:
    def test_four_phase_sequencing(self):
        """Producer rails and block acknowledge follow the Fig. 2 sequence."""
        xor = build_dual_rail_xor("x")
        sim = Simulator(xor.netlist)
        producer_a = FourPhaseProducer(xor.inputs[0], xor.ack_out, [1])
        producer_b = FourPhaseProducer(xor.inputs[1], xor.ack_out, [0])
        consumer = FourPhaseConsumer(xor.outputs[0], ack_net=xor.ack_in,
                                     ack_active_high=False)
        for process in (producer_a, producer_b, consumer):
            sim.add_process(process)
        trace = sim.settle()

        assert producer_a.done and producer_b.done
        assert consumer.received == [1]
        ack_events = trace.transitions_for(xor.ack_out)
        # The completion signal rises once (data valid) and falls once (RTZ).
        assert [t.value for t in ack_events] == [Logic.HIGH, Logic.LOW]
        # Return-to-zero happens after the acknowledge rose.
        rail = xor.inputs[0].rails[1]
        rail_events = trace.transitions_for(rail)
        assert rail_events[0].value is Logic.HIGH
        assert rail_events[1].value is Logic.LOW
        assert rail_events[1].time > ack_events[0].time

    def test_producer_sends_all_values_in_order(self):
        xor = build_dual_rail_xor("x")
        sim = Simulator(xor.netlist)
        values_a = [0, 1, 1, 0, 1]
        values_b = [1, 1, 0, 0, 1]
        producer_a = FourPhaseProducer(xor.inputs[0], xor.ack_out, values_a)
        producer_b = FourPhaseProducer(xor.inputs[1], xor.ack_out, values_b)
        consumer = FourPhaseConsumer(xor.outputs[0], ack_net=xor.ack_in,
                                     ack_active_high=False)
        for process in (producer_a, producer_b, consumer):
            sim.add_process(process)
        sim.settle()
        assert producer_a.sent == values_a
        assert producer_a.remaining == 0
        assert consumer.received == [a ^ b for a, b in zip(values_a, values_b)]

    def test_monitor_observes_without_driving(self):
        xor = build_dual_rail_xor("x")
        sim = Simulator(xor.netlist)
        monitor = ChannelMonitor(xor.outputs[0])
        sim.add_process(FourPhaseProducer(xor.inputs[0], xor.ack_out, [1, 0]))
        sim.add_process(FourPhaseProducer(xor.inputs[1], xor.ack_out, [1, 1]))
        sim.add_process(FourPhaseConsumer(xor.outputs[0], ack_net=xor.ack_in,
                                          ack_active_high=False))
        sim.add_process(monitor)
        sim.settle()
        assert monitor.observed == [0, 1]


class TestHalfBufferPipeline:
    def test_half_buffer_forwards_tokens(self):
        hb = build_half_buffer("h")
        sim = Simulator(hb.netlist)
        producer = FourPhaseProducer(hb.inputs[0], hb.ack_out, [1, 0, 1])
        consumer = FourPhaseConsumer(hb.outputs[0], ack_net=hb.ack_in,
                                     ack_active_high=False)
        sim.add_process(producer)
        sim.add_process(consumer)
        sim.settle()
        assert consumer.received == [1, 0, 1]
        assert producer.done


class TestConsumerProtocolChecks:
    def test_illegal_codeword_raises(self):
        netlist = Netlist("glitchy")
        channel = dual_rail("c").declare(netlist)
        netlist.add_net("c_ack")
        sim = Simulator(netlist)
        consumer = FourPhaseConsumer(channel, ack_net="c_ack")
        sim.add_process(consumer)
        sim.schedule_drive("c_r0", Logic.HIGH, 1e-9)
        sim.schedule_drive("c_r1", Logic.HIGH, 2e-9)
        with pytest.raises(ProtocolError):
            sim.settle()

    def test_active_high_consumer_idles_low(self):
        netlist = Netlist("idle")
        channel = dual_rail("c").declare(netlist)
        sim = Simulator(netlist)
        consumer = FourPhaseConsumer(channel)
        sim.add_process(consumer)
        sim.schedule_drive("c_r1", Logic.HIGH, 1e-9)
        sim.schedule_drive("c_r1", Logic.LOW, 3e-9)
        sim.settle()
        assert consumer.received == [1]
        assert sim.value(channel.ack) is Logic.LOW
