"""Tests of the directed-graph formalism of Section III."""

import pytest

from repro.circuits import build_dual_rail_xor, build_half_buffer, Netlist, simulate_two_operand_block
from repro.circuits.signals import TransitionKind
from repro.graph import (
    annotate_levels,
    build_circuit_graph,
    compare_channel_symmetry,
    compute_levels,
    critical_path_length,
    describe_graph,
    gate_nodes,
    gates_by_level,
    net_annotation,
    rail_cone,
    structural_profile,
    switching_profile,
    total_gate_area,
    verify_constant_profile,
)


@pytest.fixture
def xor_block():
    return build_dual_rail_xor("x")


@pytest.fixture
def xor_graph(xor_block):
    return build_circuit_graph(xor_block.netlist)


class TestGraphConstruction:
    def test_gate_vertex_count(self, xor_graph):
        assert len(list(gate_nodes(xor_graph))) == 9

    def test_edges_carry_net_annotations(self, xor_block, xor_graph):
        m1 = xor_block.instance_at(1, 1)
        o1 = xor_block.instance_at(2, 1)
        annotation = net_annotation(xor_graph, m1, o1)
        assert annotation.routing_cap_ff == pytest.approx(8.0)
        assert annotation.total_cap_ff > annotation.routing_cap_ff

    def test_block_restriction(self, xor_block):
        graph = build_circuit_graph(xor_block.netlist, block="x")
        assert len(list(gate_nodes(graph))) == 9
        empty = build_circuit_graph(xor_block.netlist, block="other")
        assert len(list(gate_nodes(empty))) == 0

    def test_total_gate_area_positive(self, xor_graph):
        assert total_gate_area(xor_graph) > 0

    def test_describe_graph_mentions_cells(self, xor_graph):
        text = describe_graph(xor_graph)
        assert "MULLER2" in text and "9 gates" in text


class TestLevels:
    def test_levels_match_fig5(self, xor_block, xor_graph):
        """Fig. 5: M gates at level 1, OR at 2, Cr at 3, completion at 4."""
        levels = compute_levels(xor_graph)
        assert levels[xor_block.instance_at(1, 1)] == 1
        assert levels[xor_block.instance_at(2, 2)] == 2
        assert levels[xor_block.instance_at(3, 1)] == 3
        assert levels[xor_block.instance_at(4, 1)] == 4

    def test_critical_path_length(self, xor_graph):
        assert critical_path_length(xor_graph) == 4

    def test_structural_profile(self, xor_graph):
        profile = structural_profile(xor_graph)
        assert profile.nc == 4
        assert profile.nt == 9
        assert profile.nij == {1: 4, 2: 2, 3: 2, 4: 1}

    def test_switching_profile_matches_paper(self, xor_block, xor_graph):
        """One computation fires exactly one gate per level: Nt = Nc = 4."""
        levels = compute_levels(xor_graph)
        result = simulate_two_operand_block(xor_block, [(0, 1)])
        profile = switching_profile(result.trace, levels, kind=TransitionKind.RISING)
        assert profile.nc == 4
        assert profile.nt == 4
        assert profile.nij == {1: 1, 2: 1, 3: 1, 4: 1}
        assert profile.is_one_per_level()

    def test_profiles_constant_across_data(self, xor_block, xor_graph):
        levels = compute_levels(xor_graph)
        profiles = []
        for pair in [(0, 0), (0, 1), (1, 0), (1, 1)]:
            result = simulate_two_operand_block(xor_block, [pair])
            profiles.append(switching_profile(result.trace, levels))
        assert verify_constant_profile(profiles)

    def test_gates_by_level(self, xor_graph):
        levels = compute_levels(xor_graph)
        grouped = gates_by_level(levels)
        assert len(grouped[1]) == 4 and len(grouped[4]) == 1

    def test_cycle_broken_on_half_buffer_loop(self):
        """Acknowledge feedback must not prevent level computation."""
        hb = build_half_buffer("h")
        graph = build_circuit_graph(hb.netlist)
        levels = compute_levels(graph)
        assert max(levels.values()) == 2

    def test_annotate_levels(self, xor_graph):
        levels = compute_levels(xor_graph)
        annotate_levels(xor_graph, levels)
        node = next(iter(gate_nodes(xor_graph)))
        assert xor_graph.nodes[node]["level"] == levels[node]


class TestSymmetry:
    def test_xor_is_symmetric(self, xor_block, xor_graph):
        report = compare_channel_symmetry(xor_block.netlist, xor_graph,
                                          xor_block.outputs[0])
        assert report.is_symmetric
        assert all(p.size == 4 for p in report.profiles)

    def test_rail_cone_contents(self, xor_block, xor_graph):
        cone = rail_cone(xor_block.netlist, xor_graph, xor_block.outputs[0].rails[0])
        assert set(cone) == set(xor_block.rail_cones[xor_block.outputs[0].rails[0]])

    def test_asymmetric_structure_detected(self):
        """A hand-built unbalanced cell must be flagged."""
        netlist = Netlist("unbal")
        netlist.add_input("a_r0")
        netlist.add_input("a_r1")
        netlist.add_net("c_r0", channel="c", rail=0)
        netlist.add_net("c_r1", channel="c", rail=1)
        # Rail 0 goes through two gates, rail 1 through one.
        netlist.add_instance("g0a", "BUF", {"A": "a_r0", "Z": "m0"})
        netlist.add_instance("g0b", "BUF", {"A": "m0", "Z": "c_r0"})
        netlist.add_instance("g1", "BUF", {"A": "a_r1", "Z": "c_r1"})
        graph = build_circuit_graph(netlist)
        from repro.circuits.channels import ChannelSpec
        channel = ChannelSpec("c").declare(netlist)
        report = compare_channel_symmetry(netlist, graph, channel)
        assert not report.is_symmetric
        assert report.mismatches
