"""Tests for the telemetry subsystem (:mod:`repro.obs`).

Covers the span tree (nesting, attributes, counter math), the disabled
no-op collector, fork-merge determinism of sharded campaigns, the JSONL
round-trip, the columnar telemetry table and the harden pipeline's use of
the span clock.
"""

import numpy as np
import pytest

from repro.circuits import build_xor_bank
from repro.core import AesSboxSelection, AttackCampaign, TraceSet
from repro.crypto.aes_tables import SBOX
from repro.electrical import GaussianNoise
from repro.harden import harden_design
from repro.obs import (
    NULL_TELEMETRY,
    RunReport,
    Telemetry,
    TelemetryError,
    current,
    read_jsonl,
    telemetry_frame,
    telemetry_rows,
    use,
    write_jsonl,
)
from repro.store import StoreError, open_store

POPCOUNT = np.asarray([bin(value).count("1") for value in range(256)])
SECRET = 0x3C


def _synthetic_source(plaintexts, noise):
    plaintexts = [list(p) for p in plaintexts]
    rng = np.random.default_rng(17)
    matrix = rng.normal(0.0, 0.4, (len(plaintexts), 24))
    values = np.asarray([SBOX[p[0] ^ SECRET] for p in plaintexts])
    matrix[:, 7] += 0.3 * POPCOUNT[values]
    if noise is not None:
        matrix = noise.apply_matrix(matrix, 1e-9, 0.0)
    return TraceSet.from_matrix(matrix, plaintexts, 1e-9)


def _campaign():
    campaign = AttackCampaign(mtd_start=50, mtd_step=50)
    campaign.add_design("synth-a", trace_source=_synthetic_source)
    campaign.add_design("synth-b", trace_source=_synthetic_source)
    campaign.add_selection(AesSboxSelection(byte_index=0, bit_index=0),
                           correct_guess=SECRET)
    campaign.add_attack("dpa")
    campaign.add_attack("cpa", model="hw")
    campaign.add_noise("noiseless")
    campaign.add_noise("gaussian", lambda: GaussianNoise(0.1, seed=13))
    return campaign


# ------------------------------------------------------------ span trees
class TestSpans:
    def test_nesting_and_attributes(self):
        telemetry = Telemetry()
        with telemetry.span("outer", design="flat"):
            with telemetry.span("inner", step=1):
                pass
            with telemetry.span("inner", step=2):
                pass
        root = telemetry.snapshot()
        assert root.shape() == (
            "run", (("outer", (("inner", ()), ("inner", ()))),))
        outer = root.find("outer")[0]
        assert outer.attrs == {"design": "flat"}
        assert [n.attrs["step"] for n in root.find("inner")] == [1, 2]
        # A span named attribute does not collide with the span name.
        with telemetry.span("harden.pass", name="equalize"):
            pass
        assert telemetry.root.find("harden.pass")[0].attrs == {
            "name": "equalize"}

    def test_spans_measure_time_and_start_offsets(self):
        telemetry = Telemetry()
        with telemetry.span("phase") as span:
            pass
        node = telemetry.root.find("phase")[0]
        assert span.duration_s > 0
        assert node.duration_s == span.duration_s
        assert node.start_s >= 0

    def test_out_of_order_close_raises(self):
        telemetry = Telemetry()
        outer = telemetry.span("outer")
        inner = telemetry.span("inner")
        outer.__enter__()
        inner.__enter__()
        with pytest.raises(TelemetryError):
            outer.__exit__(None, None, None)

    def test_counters_attribute_to_innermost_span_and_sum(self):
        telemetry = Telemetry()
        with telemetry.span("outer"):
            telemetry.count("traces", 100)
            with telemetry.span("inner"):
                telemetry.count("traces", 50)
                telemetry.count("traces", 25)
        root = telemetry.snapshot()
        assert root.find("outer")[0].counters["traces"] == 100
        assert root.find("inner")[0].counters["traces"] == 75
        assert root.total("traces") == 175

    def test_gauges_set_and_max_modes(self):
        telemetry = Telemetry()
        telemetry.gauge("knob", 3.0)
        telemetry.gauge("knob", 1.0)
        assert telemetry.root.gauges["knob"] == 1.0
        telemetry.gauge("peak", 3.0, mode="max")
        telemetry.gauge("peak", 1.0, mode="max")
        assert telemetry.root.gauges["peak"] == 3.0
        telemetry.record_rss()
        assert telemetry.root.gauges["rss_peak_kb"] > 0

    def test_adopt_grafts_worker_tree_with_shard_attribution(self):
        worker = Telemetry(name="shard")
        with worker.span("campaign.scenario", design="a"):
            worker.count("traces", 10)
        worker.count("chunks", 2)
        parent = Telemetry()
        with parent.span("campaign"):
            parent.adopt(worker.snapshot(), shard=3)
        scenario = parent.root.find("campaign.scenario")[0]
        assert scenario.attrs == {"design": "a", "shard": 3}
        assert parent.root.find("campaign")[0].counters["chunks"] == 2
        assert parent.root.total("traces") == 10


# ------------------------------------------------------------- disabled
class TestDisabled:
    def test_default_collector_is_the_null_singleton(self):
        assert current() is NULL_TELEMETRY
        assert not current().enabled

    def test_null_spans_still_measure_duration(self):
        with NULL_TELEMETRY.span("phase", design="x") as span:
            sum(range(1000))
        assert span.duration_s > 0
        assert span.node is None

    def test_null_metrics_are_no_ops(self):
        NULL_TELEMETRY.count("traces", 5)
        NULL_TELEMETRY.gauge("knob", 1.0)
        NULL_TELEMETRY.record_rss()

    def test_use_installs_and_restores(self):
        telemetry = Telemetry()
        with use(telemetry):
            assert current() is telemetry
            with use(NULL_TELEMETRY):
                assert current() is NULL_TELEMETRY
            assert current() is telemetry
        assert current() is NULL_TELEMETRY

    def test_harden_records_durations_with_telemetry_disabled(self):
        netlist = build_xor_bank(6, "obs").netlist
        result = harden_design(netlist, base="flat", bound=0.05, seed=1,
                               effort=0.4)
        assert result.records
        assert all(r.duration_s > 0 for r in result.records)


# ------------------------------------------------- campaigns and sharding
class TestCampaignTelemetry:
    def test_serial_run_covers_the_campaign_phases(self):
        telemetry = Telemetry()
        result = _campaign().run(trace_count=150, seed=3,
                                 telemetry=telemetry)
        root = telemetry.snapshot()
        assert len(root.find("campaign")) == 1
        assert len(root.find("campaign.scenario")) == 4
        assert len(root.find("campaign.generate")) == 4
        assert len(root.find("campaign.attack")) == 8
        assert root.total("traces") >= 4 * 150
        assert root.total("attacks") == len(result.rows) == 8

    def test_sharded_tree_shape_matches_serial(self):
        serial_tm = Telemetry()
        serial = _campaign().run(trace_count=150, seed=3,
                                 telemetry=serial_tm)
        sharded_tm = Telemetry()
        sharded = _campaign().run(trace_count=150, seed=3, workers=2,
                                  telemetry=sharded_tm)
        assert sharded.table() == serial.table()
        assert (sharded_tm.snapshot().shape()
                == serial_tm.snapshot().shape())
        shards = [node.attrs.get("shard")
                  for node in sharded_tm.root.find("campaign.scenario")]
        assert shards == [0, 1, 2, 3]
        assert (sharded_tm.root.total("traces")
                == serial_tm.root.total("traces"))

    def test_telemetry_never_perturbs_rows(self):
        plain = _campaign().run(trace_count=150, seed=3)
        recorded = _campaign().run(trace_count=150, seed=3,
                                   telemetry=Telemetry())
        assert recorded.table() == plain.table()
        for left, right in zip(plain.rows, recorded.rows):
            assert left == right

    def test_store_run_persists_the_telemetry_table(self, tmp_path):
        telemetry = Telemetry()
        _campaign().run(trace_count=120, seed=3, telemetry=telemetry,
                        store=tmp_path / "campaign")
        frame = open_store(tmp_path / "campaign").read_merged("telemetry")
        rows = frame.to_rows()
        assert rows
        names = {row.name for row in rows if row.record_type == "span"}
        assert {"campaign", "campaign.scenario",
                "store.write_shard"} <= names

    def test_disabled_store_run_has_no_telemetry_table(self, tmp_path):
        _campaign().run(trace_count=120, seed=3,
                        store=tmp_path / "campaign")
        store = open_store(tmp_path / "campaign")
        with pytest.raises(StoreError):
            store.read_merged("telemetry")


# ------------------------------------------------------------- exporters
class TestExport:
    def _tree(self):
        telemetry = Telemetry()
        with telemetry.span("campaign", workers=2):
            with telemetry.span("campaign.scenario", design="flat"):
                telemetry.count("traces", 100)
            with telemetry.span("campaign.scenario", design="hier"):
                telemetry.gauge("rss_peak_kb", 1024.0, mode="max")
        return telemetry.snapshot()

    def test_jsonl_round_trip(self, tmp_path):
        root = self._tree()
        path = tmp_path / "events.jsonl"
        write_jsonl(root, path)
        assert read_jsonl(path) == root

    def test_jsonl_rejects_orphan_depths(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "span", "depth": 2, "name": "x", '
                        '"start_s": 0, "duration_s": 0, "attrs": {}, '
                        '"counters": {}, "gauges": {}}\n')
        with pytest.raises(TelemetryError):
            read_jsonl(path)

    def test_rows_disambiguate_same_name_siblings(self):
        rows = telemetry_rows(self._tree())
        paths = [row.path for row in rows if row.record_type == "span"]
        assert "run/campaign/campaign.scenario" in paths
        assert "run/campaign/campaign.scenario[1]" in paths
        counter = [row for row in rows if row.record_type == "counter"][0]
        assert counter.name == "traces" and counter.value == 100

    def test_frame_round_trips_through_the_columnar_store(self):
        frame = telemetry_frame(self._tree())
        assert frame.kind == "telemetry"
        restored = type(frame).from_rows(frame.to_rows(), kind="telemetry")
        assert restored.equals(frame)
        assert restored.to_rows() == frame.to_rows()

    def test_run_report_renders_the_tree(self):
        report = RunReport(self._tree())
        text = report.render()
        assert "campaign [workers=2]" in text
        assert "traces=100" in text
        assert "rss 1.0 MiB" in text
        counts = report.phase_totals()
        assert counts["campaign.scenario"][0] == 2
        pruned = report.render(max_depth=1)
        assert "pruned" in pruned
