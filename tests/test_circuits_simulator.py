"""Tests of the event-driven simulator and its capacitance-dependent delays."""

import pytest

from repro.circuits import (
    DelayModel,
    Logic,
    Netlist,
    ReferenceSimulator,
    SimulationError,
    Simulator,
    settle_combinational,
)


def _chain_netlist():
    """a -> INV -> n1 -> INV -> y"""
    netlist = Netlist("chain")
    netlist.add_input("a")
    netlist.add_output("y")
    netlist.add_instance("i1", "INV", {"A": "a", "Z": "n1"})
    netlist.add_instance("i2", "INV", {"A": "n1", "Z": "y"})
    return netlist


class TestSimulatorBasics:
    def test_initial_state_all_low(self):
        sim = Simulator(_chain_netlist())
        assert sim.value("a") is Logic.LOW
        assert sim.value("y") is Logic.LOW

    def test_combinational_propagation(self):
        netlist = _chain_netlist()
        values = settle_combinational(netlist, {"a": Logic.HIGH})
        assert values["n1"] is Logic.LOW
        assert values["y"] is Logic.HIGH

    def test_settle_reaches_quiescence(self):
        sim = Simulator(_chain_netlist())
        sim.drive_input("a", Logic.HIGH)
        sim.settle()
        assert sim.is_quiescent()
        assert sim.value("y") is Logic.HIGH

    def test_trace_records_only_changes(self):
        sim = Simulator(_chain_netlist())
        sim.drive_input("a", Logic.HIGH)
        sim.drive_input("a", Logic.HIGH, time=1e-9)  # no change the second time
        trace = sim.settle()
        assert len(trace.transitions_for("a")) == 1

    def test_unknown_net_rejected(self):
        sim = Simulator(_chain_netlist())
        with pytest.raises(SimulationError):
            sim.drive_input("missing", Logic.HIGH)

    def test_past_event_rejected(self):
        sim = Simulator(_chain_netlist())
        sim.drive_input("a", Logic.HIGH, time=5e-9)
        sim.settle()
        with pytest.raises(SimulationError):
            sim.drive_input("a", Logic.LOW, time=1e-9)

    def test_run_until_stops_early(self):
        sim = Simulator(_chain_netlist())
        sim.drive_input("a", Logic.HIGH, time=10e-9)
        sim.run(until=1e-9)
        assert sim.value("a") is Logic.LOW
        assert sim.pending_events() == 1

    def test_oscillation_detected(self):
        netlist = Netlist("ring")
        netlist.add_instance("i1", "INV", {"A": "b", "Z": "a"})
        netlist.add_instance("i2", "BUF", {"A": "a", "Z": "b"})
        sim = Simulator(netlist)
        sim.schedule_drive("a", Logic.HIGH)
        with pytest.raises(SimulationError):
            sim.run(max_events=500)

    def test_level_annotation_copied_to_trace(self):
        netlist = _chain_netlist()
        sim = Simulator(netlist)
        sim.set_levels({"i1": 1, "i2": 2})
        sim.settle()  # reach the quiescent state (n1 high, y low)
        sim.drive_input("a", Logic.HIGH, time=1e-9)
        trace = sim.settle()
        levels = {t.net: t.level for t in trace if t.cause is not None and t.time > 1e-9}
        assert levels["n1"] == 1
        assert levels["y"] == 2


@pytest.fixture(params=[Simulator, ReferenceSimulator],
                ids=["compiled", "reference"])
def sim_class(request):
    return request.param


class TestRunForTimebase:
    """Regressions for the queue-drain timebase bug: ``run(until=...)`` must
    advance the clock to ``until`` even when no future event exists."""

    def test_back_to_back_run_for_on_quiescent_circuit(self, sim_class):
        sim = sim_class(_chain_netlist())
        sim.settle()  # consume the start-up events; circuit is quiescent
        start = sim.time
        sim.run_for(1e-9)
        assert sim.time == pytest.approx(start + 1e-9)
        sim.run_for(1e-9)
        # Pre-fix, time stayed at the last event and the timeline compressed.
        assert sim.time == pytest.approx(start + 2e-9)

    def test_drive_relative_to_time_after_idle_period(self, sim_class):
        """An environment scheduling relative to ``sim.time`` after an idle
        ``run_for`` must fire at the absolute time, not early."""
        sim = sim_class(_chain_netlist())
        sim.settle()
        start = sim.time
        sim.run_for(10e-9)
        sim.drive_input("a", Logic.HIGH, time=sim.time + 1e-9)
        trace = sim.settle()
        rises = [t for t in trace.transitions_for("a") if t.value is Logic.HIGH]
        assert rises[0].time == pytest.approx(start + 11e-9)

    def test_run_until_with_pending_event_unchanged(self, sim_class):
        sim = sim_class(_chain_netlist())
        sim.drive_input("a", Logic.HIGH, time=10e-9)
        sim.run(until=1e-9)
        assert sim.time == pytest.approx(1e-9)
        assert sim.pending_events() == 1

    def test_trace_end_time_covers_idle_run(self, sim_class):
        sim = sim_class(_chain_netlist())
        sim.settle()
        start = sim.time
        sim.run_for(5e-9)
        assert sim.trace.end_time == pytest.approx(start + 5e-9)


class TestEventBudgetBoundary:
    """Regressions for the budget off-by-one: at most ``max_events`` events
    may be committed, and the error names the honoured budget."""

    def test_exact_budget_succeeds(self, sim_class):
        # Driving the settled chain commits exactly 3 events (a, n1, y).
        sim = sim_class(_chain_netlist())
        sim.settle()
        sim.drive_input("a", Logic.HIGH)
        sim.run(max_events=3)
        assert sim.is_quiescent()
        assert sim.value("y") is Logic.HIGH

    def test_budget_exhaustion_raises_before_commit(self, sim_class):
        sim = sim_class(_chain_netlist())
        sim.settle()
        committed_before = len(sim.trace)
        sim.drive_input("a", Logic.HIGH)
        with pytest.raises(SimulationError, match="budget of 2"):
            sim.run(max_events=2)
        # Pre-fix the third event was committed before the raise.
        assert len(sim.trace) - committed_before == 2

    def test_oscillation_commits_at_most_budget(self, sim_class):
        netlist = Netlist("ring")
        netlist.add_instance("i1", "INV", {"A": "b", "Z": "a"})
        netlist.add_instance("i2", "BUF", {"A": "a", "Z": "b"})
        sim = sim_class(netlist)
        sim.schedule_drive("a", Logic.HIGH)
        with pytest.raises(SimulationError, match="budget of 50"):
            sim.run(max_events=50)
        assert len(sim.trace) <= 50


class TestDelayModel:
    def test_delay_grows_with_capacitance(self):
        netlist = _chain_netlist()
        model = DelayModel()
        cell = netlist.library.get("INV")
        small = model.gate_delay(netlist, cell, "n1")
        netlist.set_routing_cap("n1", 50.0)
        large = model.gate_delay(netlist, cell, "n1")
        assert large > small

    def test_transition_time_scales_with_cap(self):
        netlist = _chain_netlist()
        model = DelayModel()
        netlist.set_routing_cap("n1", 8.0)
        base = model.transition_time(netlist, "n1")
        netlist.set_routing_cap("n1", 16.0)
        assert model.transition_time(netlist, "n1") > base

    def test_heavier_output_delays_downstream_transition(self):
        """The Fig. 7 mechanism: a heavier net shifts all downstream events."""
        light = _chain_netlist()
        heavy = _chain_netlist()
        light.set_routing_cap("n1", 8.0)
        heavy.set_routing_cap("n1", 32.0)

        def output_time(netlist):
            sim = Simulator(netlist)
            sim.settle()  # quiescent state: n1 high, y low
            sim.drive_input("a", Logic.HIGH, time=1e-9)
            trace = sim.settle()
            rises = [t for t in trace.transitions_for("y") if t.time > 1e-9]
            return rises[0].time

        assert output_time(heavy) > output_time(light)
