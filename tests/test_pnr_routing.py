"""Focused tests of the routing estimator (repro.pnr.routing).

The dissymmetry criterion stands on per-net routed lengths, so the estimator
gets its own invariants: exact HPWL geometry on hand-placed pins, Steiner
fanout compensation, extraction consistency (capacitance strictly monotone in
routed length), and the routed-capacitance symmetry statement on a small
fenced floorplan — the hierarchical fences must not worsen the rail balance
the flat reference achieves.
"""

import numpy as np
import pytest

from repro.circuits import build_xor_bank
from repro.circuits.netlist import Netlist
from repro.core import evaluate_netlist_channels
from repro.electrical import HCMOS9_LIKE
from repro.pnr import (
    FlatPlacer,
    channel_rail_caps,
    estimate_routing,
    extract_capacitances,
    fanout_factor,
    run_flat_flow,
    run_hierarchical_flow,
)
from repro.pnr.routing import RoutingError, estimate_net, net_pin_positions


def _two_pin_netlist(positions):
    """One shared net: driven by ``g0``, read by every other buffer."""
    netlist = Netlist("routed")
    netlist.add_net("n")
    for index in range(len(positions)):
        netlist.add_net(f"stub{index}")
        if index == 0:
            pins = {"A": "stub0", "Z": "n"}
        else:
            pins = {"A": "n", "Z": f"stub{index}"}
        netlist.add_instance(f"g{index}", "BUF", pins)
    return netlist


class _FakePlacement:
    """Minimal placement stub: a name → (x, y) map."""

    def __init__(self, cells):
        self.cells = cells

    def position_of(self, name):
        return self.cells[name]


class TestEstimatorGeometry:
    def test_hpwl_of_hand_placed_pins(self):
        netlist = _two_pin_netlist([(0.0, 0.0), (3.0, 4.0)])
        placement = _FakePlacement({"g0": (0.0, 0.0), "g1": (3.0, 4.0)})
        net = netlist.net("n")
        routed = estimate_net(netlist, placement, net)
        assert routed.pin_count == 2
        assert routed.is_point_to_point
        assert routed.hpwl_um == pytest.approx(7.0)
        # Two-pin nets take no Steiner compensation.
        assert routed.length_um == pytest.approx(7.0)

    def test_fanout_compensation_applied(self):
        positions = [(0.0, 0.0), (10.0, 0.0), (0.0, 10.0), (10.0, 10.0)]
        netlist = _two_pin_netlist(positions)
        placement = _FakePlacement(
            {f"g{i}": p for i, p in enumerate(positions)})
        routed = estimate_net(netlist, placement, netlist.net("n"))
        assert routed.hpwl_um == pytest.approx(20.0)
        assert routed.length_um == pytest.approx(20.0 * fanout_factor(4))
        assert not routed.is_point_to_point

    def test_unplaced_pins_are_skipped(self):
        netlist = _two_pin_netlist([(0.0, 0.0), (1.0, 1.0)])
        placement = _FakePlacement({"g0": (0.0, 0.0)})  # g1 unplaced
        assert net_pin_positions(netlist, placement, netlist.net("n")) == [(0.0, 0.0)]
        assert estimate_net(netlist, placement, netlist.net("n")) is None

    def test_fanout_factor_monotone_and_bounded(self):
        factors = [fanout_factor(k) for k in range(1, 40)]
        assert all(b >= a for a, b in zip(factors, factors[1:]))
        assert factors[0] == 1.0
        # The square-root regime keeps growing but stays sane.
        assert 1.5 < fanout_factor(30) < 3.0

    def test_length_of_unknown_net_raises(self):
        netlist = build_xor_bank(2, "w").netlist
        placement = FlatPlacer(seed=0).place(netlist)
        estimate = estimate_routing(netlist, placement)
        with pytest.raises(RoutingError):
            estimate.length_of("no_such_net")

    def test_longest_returns_descending(self):
        netlist = build_xor_bank(4, "w").netlist
        placement = FlatPlacer(seed=0).place(netlist)
        estimate = estimate_routing(netlist, placement)
        longest = estimate.longest(5)
        lengths = [n.length_um for n in longest]
        assert lengths == sorted(lengths, reverse=True)
        assert lengths[0] == max(n.length_um for n in estimate.nets.values())


class TestExtractionConsistency:
    def test_capacitance_monotone_in_routed_length(self):
        netlist = build_xor_bank(4, "w").netlist
        placement = FlatPlacer(seed=1).place(netlist)
        estimate = estimate_routing(netlist, placement)
        report = extract_capacitances(netlist, placement, routing=estimate)
        lengths, caps = [], []
        for name, routed in estimate.nets.items():
            lengths.append(routed.length_um)
            caps.append(report.caps_ff[name])
        order = np.argsort(lengths)
        caps_sorted = np.asarray(caps)[order]
        assert np.all(np.diff(caps_sorted) >= -1e-9)
        # Linear model: the extracted cap is exactly the technology's
        # per-length wire capacitance.
        lengths_sorted = np.asarray(lengths)[order]
        expected = [HCMOS9_LIKE.wire_cap_ff(length) for length in lengths_sorted]
        assert np.allclose(caps_sorted, expected)

    def test_total_wirelength_matches_sum(self):
        netlist = build_xor_bank(3, "w").netlist
        placement = FlatPlacer(seed=2).place(netlist)
        estimate = estimate_routing(netlist, placement)
        assert estimate.total_wirelength_um() == pytest.approx(
            sum(n.length_um for n in estimate.nets.values()))


class TestRoutedCapacitanceSymmetry:
    """The paper's physical statement on a small fenced floorplan: the
    hierarchical flow's routed rail capacitances are better balanced than the
    flat reference's."""

    @pytest.fixture(scope="class")
    def placed_banks(self):
        flat_bank = build_xor_bank(6, "w").netlist
        run_flat_flow(flat_bank, seed=5, effort=0.4)
        hier_bank = build_xor_bank(6, "w").netlist
        run_hierarchical_flow(hier_bank, seed=5, effort=1.0)
        return flat_bank, hier_bank

    @staticmethod
    def _dissymmetries(netlist):
        values = []
        for caps in channel_rail_caps(netlist).values():
            smallest = min(caps)
            if smallest > 0:
                values.append((max(caps) - smallest) / smallest)
        return np.asarray(values)

    def test_all_rails_have_positive_extracted_caps(self, placed_banks):
        for netlist in placed_banks:
            for caps in channel_rail_caps(netlist).values():
                assert len(caps) == 2  # dual-rail bank
                assert all(cap > 0 for cap in caps)

    def test_hierarchical_balances_rails_better(self, placed_banks):
        flat_bank, hier_bank = placed_banks
        flat_dissym = self._dissymmetries(flat_bank)
        hier_dissym = self._dissymmetries(hier_bank)
        assert hier_dissym.mean() < flat_dissym.mean()
        # The criterion report agrees with the raw rail-cap statement.
        flat_report = evaluate_netlist_channels(flat_bank)
        hier_report = evaluate_netlist_channels(hier_bank)
        assert hier_report.mean_dissymmetry < flat_report.mean_dissymmetry

    def test_fenced_rail_pairs_stay_close(self, placed_banks):
        """Inside the fences, paired rails route within a small factor of
        each other — the geometric property the criterion quantifies."""
        _, hier_bank = placed_banks
        for caps in channel_rail_caps(hier_bank).values():
            assert max(caps) <= 3.0 * min(caps)
