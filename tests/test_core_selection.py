"""Tests of the DPA selection functions of Section IV."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    AesAddRoundKeySelection,
    AesSboxSelection,
    DesSboxSelection,
    HammingWeightSelection,
    list_standard_selections,
)
from repro.crypto import DES, SBOX
from repro.crypto.keys import bit_of, hamming_weight


class TestAesAddRoundKeySelection:
    def test_matches_definition(self):
        """D(C1, P8, K8) = bit C1 of XOR(P8, K8)."""
        selection = AesAddRoundKeySelection(byte_index=3, bit_index=2)
        plaintext = [0] * 16
        plaintext[3] = 0xA5
        assert selection(plaintext, 0x0F) == bit_of(0xA5 ^ 0x0F, 2)

    def test_guess_space(self):
        assert list(AesAddRoundKeySelection().guesses()) == list(range(256))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            AesAddRoundKeySelection(byte_index=16)
        with pytest.raises(ValueError):
            AesAddRoundKeySelection(bit_index=8)

    def test_name_mentions_target(self):
        assert "byte=2" in AesAddRoundKeySelection(byte_index=2).name

    @given(st.integers(0, 255), st.integers(0, 255), st.integers(0, 7))
    @settings(max_examples=40, deadline=None)
    def test_xor_selection_depends_only_on_guess_bit(self, byte, guess, bit):
        """The structural weakness of the XOR D function: its value depends on
        the guess only through the guessed bit itself."""
        plaintext = [byte] + [0] * 15
        selection = AesAddRoundKeySelection(byte_index=0, bit_index=bit)
        flipped_guess = guess ^ (1 << bit)
        assert selection(plaintext, guess) == 1 - selection(plaintext, flipped_guess)


class TestAesSboxSelection:
    def test_matches_definition(self):
        selection = AesSboxSelection(byte_index=1, bit_index=4)
        plaintext = [0, 0x3C] + [0] * 14
        assert selection(plaintext, 0x7B) == bit_of(SBOX[0x3C ^ 0x7B], 4)

    def test_distinguishes_guesses(self):
        """Unlike the XOR selection, the S-box selection separates guesses."""
        selection = AesSboxSelection(byte_index=0, bit_index=0)
        plaintexts = [[p] + [0] * 15 for p in range(32)]
        bits_a = [selection(p, 0x10) for p in plaintexts]
        bits_b = [selection(p, 0x21) for p in plaintexts]
        assert bits_a != bits_b

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            AesSboxSelection(byte_index=-1)


class TestDesSboxSelection:
    def test_matches_cipher_internal_value(self):
        """The selection function equals the real first-round S-box output bit
        when the guess is the true key chunk."""
        key = [0x13, 0x34, 0x57, 0x79, 0x9B, 0xBC, 0xDF, 0xF1]
        cipher = DES(key)
        from repro.crypto import round_key_sbox_chunk
        true_chunk = round_key_sbox_chunk(cipher.round_keys[0], 0)
        selection = DesSboxSelection(sbox_index=0, bit_index=1)
        plaintext = [0x01, 0x23, 0x45, 0x67, 0x89, 0xAB, 0xCD, 0xEF]
        expected = bit_of(cipher.first_round_sbox_output(plaintext, 0), 1)
        assert selection(plaintext, true_chunk) == expected

    def test_guess_space_is_64(self):
        assert list(DesSboxSelection().guesses()) == list(range(64))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            DesSboxSelection(sbox_index=8)
        with pytest.raises(ValueError):
            DesSboxSelection(bit_index=4)


class TestHammingWeightSelection:
    def test_partitions_by_weight(self):
        inner = AesAddRoundKeySelection(byte_index=0, bit_index=0)
        selection = HammingWeightSelection(inner, threshold=4)
        plaintext = [0xFF] + [0] * 15
        assert selection(plaintext, 0x00) == 1       # weight 8
        assert selection(plaintext, 0xFF) == 0       # weight 0

    def test_threshold_boundary(self):
        inner = AesAddRoundKeySelection(byte_index=0, bit_index=0)
        selection = HammingWeightSelection(inner, threshold=4)
        plaintext = [0x0F] + [0] * 15
        assert hamming_weight(0x0F) == 4
        assert selection(plaintext, 0x00) == 1


def test_standard_selection_names():
    names = list_standard_selections()
    assert len(names) == 3
    assert any("aes-addkey" in n for n in names)
    assert any("des-sbox" in n for n in names)
