"""Tests of the columnar campaign store (:mod:`repro.store`).

* :class:`CampaignFrame` round-trips the three result-row kinds exactly
  (None-heavy rows, NaN/±inf floats, empty frames);
* the npz disk format is bit-exact and crash-safe behind the JSON manifest;
* the query layer: filter/select/lazy, group-by aggregation, MTD
  percentiles, verdict pivots, pareto fronts, strict single-row lookup;
* ``AttackCampaign.run(store=)`` / ``PlacementSweep.run(store=)``: spilled
  runs match in-memory runs byte for byte, crashed runs resume from the
  manifest without re-running completed scenarios, grid mismatches refuse
  to resume;
* the campaign-result bugfix sweep: ambiguous partial keys raise instead of
  returning the first match, and table formatters survive NaN/±inf/None.
"""

import math

import numpy as np
import pytest

from repro.core import AttackCampaign, AesSboxSelection, TraceSet
from repro.core.flow import (
    AssessmentRow,
    CampaignResult,
    CampaignRow,
    _format_metric,
)
from repro.crypto.aes_tables import SBOX
from repro.electrical import GaussianNoise
from repro.pnr.sweep import PlacementSweep, SweepPoint, SweepRow
from repro.store import (
    AmbiguousQueryError,
    CampaignFrame,
    CampaignStore,
    StoreError,
    StoreManifest,
    grid_fingerprint,
    load_campaign_result,
    load_sweep_rows,
    mtd_percentiles,
    open_store,
    pareto_front,
    read_frame,
    single_row,
    verdict_pivot,
    write_frame,
)

KEY = list(range(16))
_SBOX = np.asarray(SBOX, dtype=np.int64)
_POP = np.asarray([bin(v).count("1") for v in range(256)], dtype=np.int64)


def _campaign_rows():
    return [
        CampaignRow(design="flat", selection="sbox", attack="dpa",
                    noise="quiet", trace_count=400, best_guess=0x2B,
                    best_peak=1.5e-3, correct_guess=0x2B, rank_of_correct=1,
                    discrimination=3.2, disclosure=150),
        CampaignRow(design="hier", selection="sbox", attack="dpa",
                    noise="quiet", trace_count=400, best_guess=0x7F,
                    best_peak=2.0e-4, correct_guess=0x2B, rank_of_correct=41,
                    discrimination=1.01, disclosure=None),
        # None-heavy: no known key at all.
        CampaignRow(design="blind", selection="sbox", attack="cpa-hw",
                    noise="loud", trace_count=100, best_guess=3,
                    best_peak=0.5),
        # Degenerate floats the attacks can genuinely produce.
        CampaignRow(design="degen", selection="sbox", attack="dpa",
                    noise="quiet", trace_count=10, best_guess=0,
                    best_peak=float("nan"), correct_guess=0,
                    rank_of_correct=1, discrimination=float("inf"),
                    disclosure=10),
        CampaignRow(design="degen2", selection="sbox", attack="dpa",
                    noise="quiet", trace_count=10, best_guess=0,
                    best_peak=-1.0, correct_guess=0, rank_of_correct=2,
                    discrimination=float("-inf"), disclosure=None),
    ]


def _assessment_rows():
    return [
        AssessmentRow(design="flat", assessment="tvla", noise="quiet",
                      trace_count=400, statistic="max|t|", peak=9.7,
                      threshold=4.5, flagged=True, n0=200, n1=200),
        AssessmentRow(design="hier", assessment="tvla", noise="quiet",
                      trace_count=400, statistic="max|t|", peak=1.2,
                      threshold=4.5, flagged=False, n0=200, n1=200),
        # SNR rows carry no verdict at all.
        AssessmentRow(design="flat", assessment="snr[sbox,hw]",
                      noise="quiet", trace_count=400, statistic="max SNR",
                      peak=float("nan")),
    ]


def _sweep_rows():
    return [
        SweepRow(point=SweepPoint(0.3, 0.75, 15.0, 0.0),
                 wirelength_um=120.5, max_dissymmetry=0.4,
                 mean_dissymmetry=0.1),
        SweepRow(point=SweepPoint(0.3, 0.85, 15.0, 0.5),
                 wirelength_um=131.25, max_dissymmetry=0.2,
                 mean_dissymmetry=0.05),
    ]


# ----------------------------------------------------------- frame round-trip
class TestFrameRoundTrip:
    @pytest.mark.parametrize("rows,kind", [
        (_campaign_rows()[:3], "campaign"),
        (_assessment_rows()[:2], "assessment"),
        (_sweep_rows(), "sweep"),
    ])
    def test_rows_to_frame_to_rows_identity(self, rows, kind):
        frame = CampaignFrame.from_rows(rows)
        assert frame.kind == kind
        assert len(frame) == len(rows)
        back = frame.to_rows()
        assert back == rows  # dataclass equality is field-exact (the
        # NaN-carrying rows, where == cannot work, are compared below)

    def test_nan_rows_round_trip_field_exact(self):
        rows = _campaign_rows()
        back = CampaignFrame.from_rows(rows).to_rows()
        for row, row_back in zip(rows, back):
            for name in ("design", "selection", "attack", "noise",
                         "trace_count", "best_guess", "correct_guess",
                         "rank_of_correct", "disclosure"):
                assert getattr(row, name) == getattr(row_back, name)
            for name in ("best_peak", "discrimination"):
                value, value_back = getattr(row, name), getattr(row_back, name)
                if value is None:
                    assert value_back is None
                elif math.isnan(value):
                    assert math.isnan(value_back)
                else:
                    assert value == value_back  # bit-exact, no approx

    def test_none_restored_from_masks(self):
        frame = CampaignFrame.from_rows(_campaign_rows())
        assert frame.null_count("disclosure") == 3
        assert frame.null_count("discrimination") == 1
        blind = frame.to_rows()[2]
        assert blind.correct_guess is None
        assert blind.rank_of_correct is None
        assert blind.discrimination is None

    def test_python_types_restored(self):
        back = CampaignFrame.from_rows(_campaign_rows()).to_rows()[0]
        assert type(back.trace_count) is int  # not np.int64
        assert type(back.best_peak) is float
        assert type(back.design) is str
        flagged = CampaignFrame.from_rows(_assessment_rows()).to_rows()[0]
        assert type(flagged.flagged) is bool

    def test_empty_frame_needs_kind_and_round_trips(self):
        with pytest.raises(StoreError):
            CampaignFrame.from_rows([])
        frame = CampaignFrame.from_rows([], kind="campaign")
        assert len(frame) == 0
        assert frame.to_rows() == []

    def test_mixed_kinds_rejected(self):
        with pytest.raises(StoreError, match="mixed row kinds"):
            CampaignFrame.from_rows(_campaign_rows() + _assessment_rows())

    def test_none_in_non_nullable_column_rejected(self):
        row = CampaignRow(design=None, selection="s", attack="a", noise="n",
                          trace_count=1, best_guess=0, best_peak=0.0)
        with pytest.raises(StoreError, match="not nullable"):
            CampaignFrame.from_rows([row])

    def test_result_payload_dropped(self):
        row = CampaignRow(design="d", selection="s", attack="a", noise="n",
                          trace_count=1, best_guess=0, best_peak=0.0,
                          result=object())
        back = CampaignFrame.from_rows([row]).to_rows()[0]
        assert back.result is None

    def test_concat_preserves_order(self):
        rows = _campaign_rows()
        frame = CampaignFrame.concat([
            CampaignFrame.from_rows(rows[:2]),
            CampaignFrame.from_rows([], kind="campaign"),
            CampaignFrame.from_rows(rows[2:]),
        ])
        assert frame.equals(CampaignFrame.from_rows(rows))


# ------------------------------------------------------------- disk format
class TestDiskFormat:
    @pytest.mark.parametrize("rows", [_campaign_rows(), _assessment_rows(),
                                      _sweep_rows()])
    def test_npz_round_trip_identity(self, rows, tmp_path):
        frame = CampaignFrame.from_rows(rows)
        write_frame(frame, tmp_path / "frame.npz")
        assert read_frame(tmp_path / "frame.npz").equals(frame)

    def test_write_is_deterministic(self, tmp_path):
        frame = CampaignFrame.from_rows(_campaign_rows())
        write_frame(frame, tmp_path / "a.npz")
        write_frame(frame, tmp_path / "b.npz")
        assert (tmp_path / "a.npz").read_bytes() == \
            (tmp_path / "b.npz").read_bytes()

    def test_manifest_resume_bookkeeping(self, tmp_path):
        manifest = StoreManifest(kind="campaign", fingerprint="abc",
                                 scenario_keys=["s0", "s1", "s2"])
        manifest.save(tmp_path)
        loaded = StoreManifest.load(tmp_path)
        assert loaded.pending_keys() == ["s0", "s1", "s2"]
        assert loaded.completed_keys() == []

    def test_manifest_rejects_grid_mismatch(self, tmp_path):
        manifest = StoreManifest(kind="campaign", fingerprint="abc",
                                 scenario_keys=["s0", "s1"])
        with pytest.raises(StoreError, match="use a fresh directory"):
            manifest.check_compatible(kind="sweep", fingerprint="abc",
                                      scenario_keys=["s0", "s1"])
        with pytest.raises(StoreError, match="first difference"):
            manifest.check_compatible(kind="campaign", fingerprint="abc",
                                      scenario_keys=["s0", "sX"])
        with pytest.raises(StoreError, match="fingerprint"):
            manifest.check_compatible(kind="campaign", fingerprint="zzz",
                                      scenario_keys=["s0", "s1"])

    def test_fingerprint_stable_and_order_insensitive(self):
        a = grid_fingerprint({"seed": 3, "keys": ["a", "b"]})
        b = grid_fingerprint({"keys": ["a", "b"], "seed": 3})
        assert a == b
        assert a != grid_fingerprint({"seed": 4, "keys": ["a", "b"]})
        with pytest.raises(StoreError, match="JSON-stable"):
            grid_fingerprint({"callable": lambda: None})

    def test_store_shard_crash_safety_order(self, tmp_path):
        """Every manifest-listed shard is backed by fully-written npz data."""
        store = CampaignStore.open(tmp_path, kind="campaign",
                                   scenario_keys=["s0", "s1"],
                                   fingerprint="f")
        store.write_shard("s0", {
            "rows": CampaignFrame.from_rows(_campaign_rows()[:2]),
        })
        # A crash here leaves s1 pending; reload and check integrity.
        reloaded = open_store(tmp_path)
        assert reloaded.completed_keys() == ["s0"]
        assert reloaded.pending_keys() == ["s1"]
        assert len(reloaded.read_shard("s0")["rows"]) == 2
        with pytest.raises(StoreError, match="no completed shard"):
            reloaded.read_shard("s1")


# ------------------------------------------------------------- query layer
class TestQueryLayer:
    def _frame(self):
        return CampaignFrame.from_rows(_campaign_rows())

    def test_filter_scalar_membership_and_null(self):
        frame = self._frame()
        assert len(frame.filter(design="flat")) == 1
        assert len(frame.filter(design=["flat", "hier"])) == 2
        undisclosed = frame.filter(disclosure=None)
        assert set(undisclosed.column("design")) == {"hier", "blind",
                                                     "degen2"}

    def test_filter_predicate_composes(self):
        frame = self._frame()
        fast = frame.filter(lambda f: f.column("trace_count") >= 400,
                            attack="dpa")
        assert set(fast.column("design")) == {"flat", "hier"}

    def test_select_projection_cannot_unflatten(self):
        projected = self._frame().select("design", "disclosure")
        assert projected.column_names() == ["design", "disclosure"]
        with pytest.raises(StoreError, match="derived schema"):
            projected.to_rows()

    def test_lazy_pipeline_single_pass(self):
        frame = self._frame()
        lazy = frame.lazy().filter(attack="dpa").select("design", "noise")
        collected = lazy.collect()
        assert len(collected) == 4
        eager = frame.filter(attack="dpa").select("design", "noise")
        assert collected.equals(eager)

    def test_group_by_aggregates(self):
        frame = self._frame()
        stats = frame.group_by("attack").agg(
            peak_max=("best_peak", "max"),
            mtd=("disclosure", "median"),
            disclosed=("disclosure", "count"))
        assert list(stats.column("attack")) == ["cpa-hw", "dpa"]
        dpa = stats.filter(attack="dpa")
        assert dpa.column("rows")[0] == 4
        assert dpa.column("disclosed")[0] == 2.0  # nulls dropped
        assert dpa.column("mtd")[0] == 80.0  # median of 150, 10

    def test_mtd_percentiles_conditional_on_disclosure(self):
        frame = self._frame()
        table = mtd_percentiles(frame, by=("attack",), q=(50,))
        dpa = table.filter(attack="dpa")
        assert dpa.column("p50")[0] == 80.0
        assert dpa.column("undisclosed")[0] == 2
        cpa = table.filter(attack="cpa-hw")
        assert math.isnan(cpa.column("p50")[0])  # nothing disclosed
        assert cpa.column("undisclosed")[0] == 1

    def test_verdict_pivot_campaign_default(self):
        pivot = verdict_pivot(self._frame())
        assert pivot.value == "disclosed"
        assert pivot.fraction("flat", "dpa") == 1.0
        assert pivot.fraction("hier", "dpa") == 0.0
        assert "disclosed rate" in pivot.as_table()

    def test_verdict_pivot_assessment_excludes_unverdicted(self):
        pivot = verdict_pivot(CampaignFrame.from_rows(_assessment_rows()),
                              cols="assessment")
        assert pivot.fraction("flat", "tvla") == 1.0
        assert pivot.fraction("hier", "tvla") == 0.0
        # The SNR row has no verdict: its cell has an empty denominator.
        assert math.isnan(pivot.fraction("flat", "snr[sbox,hw]"))

    def test_pareto_front_drops_dominated(self):
        rows = [
            SweepRow(SweepPoint(0.3, 0.75, 15.0, w), wirelength_um=wl,
                     max_dissymmetry=dis, mean_dissymmetry=dis / 2)
            for w, wl, dis in [
                (0.0, 100.0, 0.5),   # pareto (cheapest)
                (0.2, 120.0, 0.3),   # pareto
                (0.4, 125.0, 0.4),   # dominated by (120, 0.3)
                (0.6, 150.0, 0.1),   # pareto (most protected)
                (0.8, 150.0, 0.1),   # tie: kept too
            ]
        ]
        front = pareto_front(CampaignFrame.from_rows(rows),
                             minimize=("wirelength_um", "max_dissymmetry"))
        assert list(front.column("wirelength_um")) == [100.0, 120.0,
                                                       150.0, 150.0]

    def test_pareto_front_maximize_and_nulls(self):
        frame = self._frame()
        front = pareto_front(frame, minimize=("trace_count",),
                             maximize=("discrimination",))
        # NaN-discrimination and null rows excluded; degen's +inf wins its
        # trace count, blind (null discrimination) is gone.
        assert "blind" not in set(front.column("design"))

    def test_single_row_strictness(self):
        frame = self._frame()
        assert single_row(frame, ("design", "attack"), design="flat") == 0
        with pytest.raises(KeyError, match="no campaign row"):
            single_row(frame, ("design", "attack"), design="missing")
        with pytest.raises(AmbiguousQueryError, match="narrow the query"):
            single_row(frame, ("design", "attack"), attack="dpa")


# -------------------------------------------- campaign-result bugfix sweep
class TestCampaignResultQueries:
    def _result(self):
        return CampaignResult(rows=_campaign_rows(),
                              assessments=_assessment_rows())

    def test_row_exact_key(self):
        result = self._result()
        assert result.row("flat", attack="dpa").disclosure == 150

    def test_row_ambiguous_partial_key_raises_with_labels(self):
        """Regression: the old first-match lookup silently returned
        whichever scenario ran first."""
        result = self._result()
        result.rows.append(CampaignRow(
            design="flat", selection="sbox", attack="cpa-hw", noise="quiet",
            trace_count=400, best_guess=0x2B, best_peak=0.9))
        with pytest.raises(AmbiguousQueryError) as exc:
            result.row("flat")
        assert "dpa" in str(exc.value) and "cpa-hw" in str(exc.value)

    def test_row_no_match_raises_keyerror(self):
        with pytest.raises(KeyError):
            self._result().row("missing")

    def test_assessment_row_ambiguity(self):
        result = self._result()
        with pytest.raises(AmbiguousQueryError, match="tvla"):
            result.assessment_row("flat")
        row = result.assessment_row("flat", assessment="tvla")
        assert row.flagged is True

    def test_frame_cache_invalidated_by_growth(self):
        result = self._result()
        first = result.frame()
        result.rows.append(_campaign_rows()[0])
        assert len(result.frame()) == len(first) + 1

    def test_table_formats_degenerate_floats(self):
        """Regression: NaN slipped past the ``not in (None, inf)`` guard and
        -inf rendered through the numeric format."""
        table = self._result().table()
        degen = next(line for line in table.splitlines() if "degen " in line)
        assert " nan " in degen and " inf " in degen
        degen2 = next(line for line in table.splitlines()
                      if "degen2" in line)
        assert " -inf " in degen2

    def test_assessment_table_formats_nan_peak(self):
        table = self._result().assessment_table()
        snr_line = next(line for line in table.splitlines() if "snr[" in line)
        assert " nan " in snr_line  # peak
        assert snr_line.rstrip().endswith("-")  # no verdict

    @pytest.mark.parametrize("value,expected", [
        (None, "-"), (float("nan"), "nan"), (float("inf"), "inf"),
        (float("-inf"), "-inf"), (1.5, "1.50"),
    ])
    def test_format_metric(self, value, expected):
        assert _format_metric(value) == expected


# ----------------------------------------------------- campaign store e2e
def _leaky_source(plaintexts, noise):
    plaintexts = [list(p) for p in plaintexts]
    points = np.asarray(plaintexts, dtype=np.int64)
    matrix = np.zeros((len(plaintexts), 24))
    matrix[:, 3] += 2e-3 * points[:, 1]
    matrix[:, 7] += 0.3 * _POP[_SBOX[points[:, 0] ^ KEY[0]]]
    if noise is not None:
        matrix = noise.apply_matrix(matrix, 1e-9, 0.0)
    return TraceSet.from_matrix(matrix, plaintexts, 1e-9)


class _CountingSource:
    """A leaky source that counts its invocations (resume-skip evidence)."""

    def __init__(self, fail_after=None):
        self.calls = 0
        self.fail_after = fail_after

    def __call__(self, plaintexts, noise):
        self.calls += 1
        if self.fail_after is not None and self.calls > self.fail_after:
            raise RuntimeError("simulated mid-campaign crash")
        return _leaky_source(plaintexts, noise)


def _store_campaign(source_a=_leaky_source, source_b=_leaky_source):
    selection = AesSboxSelection(byte_index=0, bit_index=3)
    campaign = AttackCampaign(KEY, mtd_start=50, mtd_step=50)
    campaign.add_design("alpha", trace_source=source_a)
    campaign.add_design("beta", trace_source=source_b)
    campaign.add_selection(selection)
    campaign.add_attack("dpa")
    campaign.add_assessment("tvla")
    campaign.add_noise("quiet", lambda: GaussianNoise(0.1, seed=5))
    return campaign


class TestCampaignStoreEndToEnd:
    @pytest.fixture(scope="class")
    def in_memory(self):
        return _store_campaign().run(120, seed=3)

    def test_store_run_matches_in_memory(self, in_memory, tmp_path):
        stored = _store_campaign().run(120, seed=3, store=tmp_path / "s")
        assert stored.table() == in_memory.table()
        assert stored.assessment_table() == in_memory.assessment_table()

    def test_resume_skips_completed_scenarios(self, in_memory, tmp_path):
        first = _CountingSource()
        _store_campaign(source_a=first).run(120, seed=3,
                                            store=tmp_path / "s")
        calls_after_full_run = first.calls
        assert calls_after_full_run > 0
        resumed = _store_campaign(source_a=first).run(120, seed=3,
                                                      store=tmp_path / "s")
        assert first.calls == calls_after_full_run  # nothing re-ran
        assert resumed.table() == in_memory.table()

    def test_crash_resume_byte_identical(self, in_memory, tmp_path):
        """A run crashing mid-grid leaves resumable shards; the resumed
        table is byte-identical to an uninterrupted run."""
        crashing = _CountingSource(fail_after=1)
        with pytest.raises(RuntimeError, match="simulated"):
            _store_campaign(source_b=crashing).run(120, seed=3,
                                                   store=tmp_path / "s")
        partial = load_campaign_result(tmp_path / "s")
        assert {row.design for row in partial.rows} == {"alpha"}
        resumed = _store_campaign().run(120, seed=3, store=tmp_path / "s")
        assert resumed.table() == in_memory.table()
        assert resumed.assessment_table() == in_memory.assessment_table()

    def test_sharded_resume_byte_identical_to_serial(self, tmp_path):
        serial = _store_campaign().run(120, seed=3,
                                       store=tmp_path / "serial")
        sharded = _store_campaign().run(120, seed=3,
                                        store=tmp_path / "sharded",
                                        workers=2)
        assert sharded.table() == serial.table()
        assert (tmp_path / "serial" / "frame.npz").read_bytes() == \
            (tmp_path / "sharded" / "frame.npz").read_bytes()
        assert (tmp_path / "serial" / "assessments.npz").read_bytes() == \
            (tmp_path / "sharded" / "assessments.npz").read_bytes()

    def test_grid_change_refuses_resume(self, tmp_path):
        _store_campaign().run(120, seed=3, store=tmp_path / "s")
        with pytest.raises(StoreError, match="fingerprint"):
            _store_campaign().run(120, seed=4, store=tmp_path / "s")

    def test_keep_results_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="keep_results"):
            _store_campaign().run(120, seed=3, store=tmp_path / "s",
                                  keep_results=True)

    def test_loaded_frames_feed_query_layer(self, in_memory, tmp_path):
        _store_campaign().run(120, seed=3, store=tmp_path / "s")
        loaded = load_campaign_result(tmp_path / "s")
        assert loaded.table() == in_memory.table()
        pivot = verdict_pivot(loaded.frame())
        assert pivot.fraction("alpha", "dpa") == \
            float(in_memory.row("alpha").disclosed)


# -------------------------------------------------------- sweep store e2e
class _CountingFactory:
    def __init__(self, builder):
        self.builder = builder
        self.calls = 0

    def __call__(self):
        self.calls += 1
        return self.builder()


class TestSweepStoreEndToEnd:
    def _sweep(self, factory=None):
        from repro.circuits import build_xor_bank

        factory = factory or (lambda: build_xor_bank(4, "w").netlist)
        return PlacementSweep(netlist_factory=factory, seed=1, effort=0.3,
                              cooling=(0.7, 0.8))

    def test_store_run_resumes_without_replacement(self, tmp_path):
        from repro.circuits import build_xor_bank

        plain = self._sweep().run()
        counting = _CountingFactory(lambda: build_xor_bank(4, "w").netlist)
        stored = self._sweep(counting).run(store=tmp_path / "sw")
        assert stored.as_table() == plain.as_table()
        calls_after_run = counting.calls
        resumed = self._sweep(counting).run(store=tmp_path / "sw")
        # Resume re-builds one netlist for the design name, nothing per point.
        assert counting.calls == calls_after_run + 1
        assert resumed.as_table() == plain.as_table()
        loaded = load_sweep_rows(tmp_path / "sw")
        assert loaded.design == "w" and loaded.flow == "flat"
        assert loaded.as_table() == plain.as_table()

    def test_knob_change_refuses_resume(self, tmp_path):
        self._sweep().run(store=tmp_path / "sw")
        changed = self._sweep()
        changed.seed = 2
        with pytest.raises(StoreError, match="fingerprint"):
            changed.run(store=tmp_path / "sw")

    def test_sweep_frame_pareto(self, tmp_path):
        self._sweep().run(store=tmp_path / "sw")
        store = open_store(tmp_path / "sw")
        frame = store.read_merged("rows")
        front = pareto_front(frame, minimize=("wirelength_um",
                                              "max_dissymmetry"))
        assert 1 <= len(front) <= len(frame)
