"""Tests of the structural netlist representation."""

import pytest

from repro.circuits import Netlist, NetlistError, PortDirection


def _small_netlist():
    netlist = Netlist("small")
    netlist.add_input("a")
    netlist.add_input("b")
    netlist.add_output("y")
    netlist.add_instance("g1", "AND2", {"A": "a", "B": "b", "Z": "n1"})
    netlist.add_instance("g2", "INV", {"A": "n1", "Z": "y"})
    return netlist


class TestStructure:
    def test_counts(self):
        netlist = _small_netlist()
        assert netlist.instance_count == 2
        assert netlist.net_count == 4

    def test_driver_and_sinks(self):
        netlist = _small_netlist()
        n1 = netlist.net("n1")
        assert n1.driver.instance == "g1"
        assert [s.instance for s in n1.sinks] == ["g2"]
        assert n1.fanout == 1

    def test_duplicate_instance_rejected(self):
        netlist = _small_netlist()
        with pytest.raises(NetlistError):
            netlist.add_instance("g1", "INV", {"A": "a", "Z": "z2"})

    def test_double_driver_rejected(self):
        netlist = _small_netlist()
        with pytest.raises(NetlistError):
            netlist.add_instance("g3", "INV", {"A": "a", "Z": "n1"})

    def test_missing_pin_rejected(self):
        netlist = Netlist("bad")
        with pytest.raises(NetlistError):
            netlist.add_instance("g", "AND2", {"A": "a", "Z": "z"})

    def test_unknown_pin_rejected(self):
        netlist = Netlist("bad")
        with pytest.raises(NetlistError):
            netlist.add_instance("g", "INV", {"A": "a", "Q": "q", "Z": "z"})

    def test_unknown_net_raises(self):
        netlist = _small_netlist()
        with pytest.raises(NetlistError):
            netlist.net("nope")

    def test_fanin_fanout(self):
        netlist = _small_netlist()
        assert [i.name for i in netlist.fanout_of("g1")] == ["g2"]
        assert [i.name for i in netlist.fanin_of("g2")] == ["g1"]

    def test_ports(self):
        netlist = _small_netlist()
        assert set(netlist.input_nets()) == {"a", "b"}
        assert netlist.output_nets() == ["y"]
        assert netlist.port("a").direction is PortDirection.INPUT

    def test_validate_clean(self):
        assert _small_netlist().validate() == []

    def test_validate_detects_undriven_output(self):
        netlist = Netlist("bad")
        netlist.add_output("y")
        problems = netlist.validate()
        assert any("undriven" in p for p in problems)

    def test_validate_detects_missing_driver(self):
        netlist = Netlist("bad")
        netlist.add_instance("g", "INV", {"A": "floating", "Z": "z"})
        problems = netlist.validate()
        assert any("floating" in p for p in problems)


class TestElectrical:
    def test_pin_cap_sums_fanout(self):
        netlist = _small_netlist()
        inv_cap = netlist.library.get("INV").input_cap_ff
        assert netlist.pin_cap_ff("n1") == pytest.approx(inv_cap)

    def test_total_cap_includes_driver_parasitics(self):
        netlist = _small_netlist()
        netlist.set_routing_cap("n1", 5.0)
        and2 = netlist.library.get("AND2")
        inv = netlist.library.get("INV")
        expected = 5.0 + inv.input_cap_ff + and2.parasitic_cap_ff + and2.short_circuit_cap_ff
        assert netlist.total_cap_ff("n1") == pytest.approx(expected)

    def test_load_cap_excludes_driver(self):
        netlist = _small_netlist()
        netlist.set_routing_cap("n1", 2.0)
        inv = netlist.library.get("INV")
        assert netlist.load_cap_ff("n1") == pytest.approx(2.0 + inv.input_cap_ff)

    def test_negative_cap_rejected(self):
        netlist = _small_netlist()
        with pytest.raises(ValueError):
            netlist.set_routing_cap("n1", -1.0)

    def test_total_area(self):
        netlist = _small_netlist()
        expected = (netlist.library.get("AND2").area_um2
                    + netlist.library.get("INV").area_um2)
        assert netlist.total_area_um2() == pytest.approx(expected)


class TestBlocksAndChannels:
    def test_blocks_listing(self):
        netlist = Netlist("blocks")
        netlist.add_instance("x/g", "INV", {"A": "a", "Z": "b"}, block="x")
        netlist.add_instance("y/g", "INV", {"A": "b", "Z": "c"}, block="y")
        assert netlist.blocks() == ["x", "y"]
        assert [i.name for i in netlist.instances_in_block("x")] == ["x/g"]

    def test_channel_grouping(self):
        netlist = Netlist("chan")
        netlist.add_net("d_r0", channel="d", rail=0)
        netlist.add_net("d_r1", channel="d", rail=1)
        netlist.add_net("plain")
        channels = netlist.channels()
        assert list(channels) == ["d"]
        assert [n.name for n in channels["d"]] == ["d_r0", "d_r1"]

    def test_merge_with_prefix(self):
        base = Netlist("base")
        other = _small_netlist()
        base.merge(other, prefix="u0/")
        assert base.instance("u0/g1").cell == "AND2"
        assert base.has_net("u0/n1")
        assert base.instance_count == 2


class TestMutationApi:
    """The hardening mutation layer: cap versions, dummy loads, digests."""

    def test_structural_edits_bump_topology_not_caps(self):
        netlist = Netlist("v")
        before = netlist.cap_version
        netlist.add_net("a")
        netlist.add_instance("g", "INV", {"A": "a", "Z": "y"})
        assert netlist.topology_version > 0
        assert netlist.cap_version == before

    def test_set_routing_cap_bumps_cap_version_only(self):
        netlist = _small_netlist()
        topology = netlist.topology_version
        caps = netlist.cap_version
        netlist.set_routing_cap("n1", 3.0)
        assert netlist.cap_version == caps + 1
        assert netlist.topology_version == topology
        netlist.set_routing_caps({"n1": 4.0, "y": 1.0})
        assert netlist.cap_version == caps + 3

    def test_dummy_load_accumulates_and_counts_into_load_cap(self):
        netlist = _small_netlist()
        base_load = netlist.load_cap_ff("n1")
        base_total = netlist.total_cap_ff("n1")
        caps = netlist.cap_version
        assert netlist.add_dummy_load("n1", 2.5) == 2.5
        assert netlist.add_dummy_load("n1", 1.5) == 4.0
        assert netlist.cap_version == caps + 2
        assert netlist.load_cap_ff("n1") == pytest.approx(base_load + 4.0)
        assert netlist.total_cap_ff("n1") == pytest.approx(base_total + 4.0)
        assert netlist.dummy_load_total_ff() == pytest.approx(4.0)

    def test_dummy_load_survives_routing_rewrite(self):
        netlist = _small_netlist()
        netlist.add_dummy_load("n1", 2.0)
        netlist.set_routing_cap("n1", 7.0)
        assert netlist.net("n1").dummy_cap_ff == pytest.approx(2.0)
        assert netlist.load_cap_ff("n1") >= 9.0

    def test_negative_dummy_load_rejected(self):
        netlist = _small_netlist()
        with pytest.raises(ValueError):
            netlist.add_dummy_load("n1", -1.0)

    def test_clear_dummy_loads(self):
        netlist = _small_netlist()
        netlist.add_dummy_load("n1", 2.0)
        caps = netlist.cap_version
        assert netlist.clear_dummy_loads() == 1
        assert netlist.cap_version == caps + 1
        assert netlist.dummy_load_total_ff() == 0.0
        # A second clear is a no-op and does not bump the version.
        assert netlist.clear_dummy_loads() == 0
        assert netlist.cap_version == caps + 1

    def test_touch_caps_bumps_version(self):
        netlist = _small_netlist()
        caps = netlist.cap_version
        netlist.touch_caps()
        assert netlist.cap_version == caps + 1
        assert netlist.state_version == (netlist.topology_version, caps + 1)

    def test_merge_copies_dummy_loads(self):
        other = _small_netlist()
        other.add_dummy_load("n1", 3.0)
        base = Netlist("base")
        base.merge(other, prefix="u0/")
        assert base.net("u0/n1").dummy_cap_ff == pytest.approx(3.0)


class TestContentDigest:
    def test_digest_is_deterministic_across_insertion_order(self):
        first = Netlist("d")
        first.add_net("a")
        first.add_net("b")
        second = Netlist("d")
        second.add_net("b")
        second.add_net("a")
        assert first.content_digest() == second.content_digest()

    def test_digest_changes_on_cap_and_structure_edits(self):
        netlist = _small_netlist()
        base = netlist.content_digest()
        netlist.set_routing_cap("n1", 1.0)
        after_cap = netlist.content_digest()
        assert after_cap != base
        netlist.add_dummy_load("n1", 0.5)
        after_dummy = netlist.content_digest()
        assert after_dummy != after_cap
        netlist.add_instance("g3", "INV", {"A": "y", "Z": "z"})
        assert netlist.content_digest() != after_dummy

    def test_identical_builds_share_the_digest(self):
        assert (_small_netlist().content_digest()
                == _small_netlist().content_digest())
