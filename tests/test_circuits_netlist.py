"""Tests of the structural netlist representation."""

import pytest

from repro.circuits import Netlist, NetlistError, PortDirection


def _small_netlist():
    netlist = Netlist("small")
    netlist.add_input("a")
    netlist.add_input("b")
    netlist.add_output("y")
    netlist.add_instance("g1", "AND2", {"A": "a", "B": "b", "Z": "n1"})
    netlist.add_instance("g2", "INV", {"A": "n1", "Z": "y"})
    return netlist


class TestStructure:
    def test_counts(self):
        netlist = _small_netlist()
        assert netlist.instance_count == 2
        assert netlist.net_count == 4

    def test_driver_and_sinks(self):
        netlist = _small_netlist()
        n1 = netlist.net("n1")
        assert n1.driver.instance == "g1"
        assert [s.instance for s in n1.sinks] == ["g2"]
        assert n1.fanout == 1

    def test_duplicate_instance_rejected(self):
        netlist = _small_netlist()
        with pytest.raises(NetlistError):
            netlist.add_instance("g1", "INV", {"A": "a", "Z": "z2"})

    def test_double_driver_rejected(self):
        netlist = _small_netlist()
        with pytest.raises(NetlistError):
            netlist.add_instance("g3", "INV", {"A": "a", "Z": "n1"})

    def test_missing_pin_rejected(self):
        netlist = Netlist("bad")
        with pytest.raises(NetlistError):
            netlist.add_instance("g", "AND2", {"A": "a", "Z": "z"})

    def test_unknown_pin_rejected(self):
        netlist = Netlist("bad")
        with pytest.raises(NetlistError):
            netlist.add_instance("g", "INV", {"A": "a", "Q": "q", "Z": "z"})

    def test_unknown_net_raises(self):
        netlist = _small_netlist()
        with pytest.raises(NetlistError):
            netlist.net("nope")

    def test_fanin_fanout(self):
        netlist = _small_netlist()
        assert [i.name for i in netlist.fanout_of("g1")] == ["g2"]
        assert [i.name for i in netlist.fanin_of("g2")] == ["g1"]

    def test_ports(self):
        netlist = _small_netlist()
        assert set(netlist.input_nets()) == {"a", "b"}
        assert netlist.output_nets() == ["y"]
        assert netlist.port("a").direction is PortDirection.INPUT

    def test_validate_clean(self):
        assert _small_netlist().validate() == []

    def test_validate_detects_undriven_output(self):
        netlist = Netlist("bad")
        netlist.add_output("y")
        problems = netlist.validate()
        assert any("undriven" in p for p in problems)

    def test_validate_detects_missing_driver(self):
        netlist = Netlist("bad")
        netlist.add_instance("g", "INV", {"A": "floating", "Z": "z"})
        problems = netlist.validate()
        assert any("floating" in p for p in problems)


class TestElectrical:
    def test_pin_cap_sums_fanout(self):
        netlist = _small_netlist()
        inv_cap = netlist.library.get("INV").input_cap_ff
        assert netlist.pin_cap_ff("n1") == pytest.approx(inv_cap)

    def test_total_cap_includes_driver_parasitics(self):
        netlist = _small_netlist()
        netlist.set_routing_cap("n1", 5.0)
        and2 = netlist.library.get("AND2")
        inv = netlist.library.get("INV")
        expected = 5.0 + inv.input_cap_ff + and2.parasitic_cap_ff + and2.short_circuit_cap_ff
        assert netlist.total_cap_ff("n1") == pytest.approx(expected)

    def test_load_cap_excludes_driver(self):
        netlist = _small_netlist()
        netlist.set_routing_cap("n1", 2.0)
        inv = netlist.library.get("INV")
        assert netlist.load_cap_ff("n1") == pytest.approx(2.0 + inv.input_cap_ff)

    def test_negative_cap_rejected(self):
        netlist = _small_netlist()
        with pytest.raises(ValueError):
            netlist.set_routing_cap("n1", -1.0)

    def test_total_area(self):
        netlist = _small_netlist()
        expected = (netlist.library.get("AND2").area_um2
                    + netlist.library.get("INV").area_um2)
        assert netlist.total_area_um2() == pytest.approx(expected)


class TestBlocksAndChannels:
    def test_blocks_listing(self):
        netlist = Netlist("blocks")
        netlist.add_instance("x/g", "INV", {"A": "a", "Z": "b"}, block="x")
        netlist.add_instance("y/g", "INV", {"A": "b", "Z": "c"}, block="y")
        assert netlist.blocks() == ["x", "y"]
        assert [i.name for i in netlist.instances_in_block("x")] == ["x/g"]

    def test_channel_grouping(self):
        netlist = Netlist("chan")
        netlist.add_net("d_r0", channel="d", rail=0)
        netlist.add_net("d_r1", channel="d", rail=1)
        netlist.add_net("plain")
        channels = netlist.channels()
        assert list(channels) == ["d"]
        assert [n.name for n in channels["d"]] == ["d_r0", "d_r1"]

    def test_merge_with_prefix(self):
        base = Netlist("base")
        other = _small_netlist()
        base.merge(other, prefix="u0/")
        assert base.instance("u0/g1").cell == "AND2"
        assert base.has_net("u0/n1")
        assert base.instance_count == 2
