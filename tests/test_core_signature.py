"""Tests of the electrical-signature analysis (equations (10)-(12))."""

import numpy as np
import pytest

from repro.circuits import build_dual_rail_xor
from repro.core import (
    FormalCurrentModel,
    compare_formal_and_simulated,
    formal_signature,
    set_average,
    signature_from_traces,
    signature_peak_count,
    signature_terms,
)
from repro.electrical import Waveform, per_computation_currents

PAIRS_C0 = [(0, 0), (1, 1)]  # computations producing c = 0
PAIRS_C1 = [(0, 1), (1, 0)]  # computations producing c = 1


def _model_with_caps(caps):
    block = build_dual_rail_xor("x")
    for (level, position), value in caps.items():
        block.set_level_cap(level, position, value)
    return FormalCurrentModel.from_block(block), block


class TestFormalSignature:
    def test_balanced_block_has_null_signature(self):
        """Equation (12): matched capacitances give a null bias."""
        model, _ = _model_with_caps({})
        report = signature_terms(model)
        assert report.is_balanced
        assert report.max_term == pytest.approx(0.0)
        assert report.waveform.max_abs() == pytest.approx(0.0)

    def test_unbalanced_level3_dominates_level3(self):
        """Fig. 7a: a heavier Cl31 leaks at the end of the data path."""
        model, _ = _model_with_caps({(3, 1): 16.0})
        report = signature_terms(model)
        assert not report.is_balanced
        assert report.dominant_level() == 3
        assert report.waveform.max_abs() > 0

    def test_unbalanced_level1_leaks_earlier_than_level3(self):
        """Fig. 7c/d: the earlier the unbalanced node, the earlier the bias."""
        def first_deviation(report):
            samples = np.abs(report.waveform.samples)
            threshold = 0.05 * samples.max()
            return np.argmax(samples > threshold) * report.waveform.dt

        late, _ = _model_with_caps({(3, 1): 16.0})
        early, _ = _model_with_caps({(1, 1): 16.0, (1, 2): 16.0})
        assert first_deviation(signature_terms(early)) < \
            first_deviation(signature_terms(late))

    def test_larger_imbalance_larger_ratio_term(self):
        small, _ = _model_with_caps({(1, 1): 16.0, (1, 2): 16.0})
        large, _ = _model_with_caps({(1, 1): 32.0, (1, 2): 32.0})
        small_term = [t for t in signature_terms(small).terms if t.level == 1][0]
        large_term = [t for t in signature_terms(large).terms if t.level == 1][0]
        assert abs(large_term.cap_difference_ff) > abs(small_term.cap_difference_ff)

    def test_terms_expose_equation12_ratios(self):
        model, _ = _model_with_caps({(2, 1): 16.0})
        term = [t for t in signature_terms(model).terms if t.level == 2][0]
        assert term.ratio_a > 0 and term.ratio_b > 0
        assert term.ratio_difference == pytest.approx(term.ratio_a - term.ratio_b)

    def test_shared_completion_cancels(self):
        """The I41 term common to both sets does not appear in the terms."""
        model, _ = _model_with_caps({})
        levels = [t.level for t in signature_terms(model).terms]
        assert 4 not in levels

    def test_formal_signature_antisymmetry(self):
        model, _ = _model_with_caps({(3, 1): 16.0})
        forward = formal_signature(model, value_a=0, value_b=1)
        backward = formal_signature(model, value_a=1, value_b=0)
        n = min(len(forward), len(backward))
        assert np.allclose(forward.samples[:n], -backward.samples[:n])


class TestTraceSignature:
    def test_set_average_matches_numpy_mean(self):
        a = Waveform(np.full(8, 1.0), 1e-12, 0.0)
        b = Waveform(np.full(8, 3.0), 1e-12, 0.0)
        assert set_average([a, b]).value_at(0.0) == pytest.approx(2.0)

    def test_balanced_simulated_signature_is_null(self):
        xor = build_dual_rail_xor("x")
        waves = per_computation_currents(xor, PAIRS_C0 + PAIRS_C1)
        signature = signature_from_traces(waves[:2], waves[2:])
        assert signature.max_abs() == pytest.approx(0.0)

    def test_unbalanced_simulated_signature_is_not_null(self):
        xor = build_dual_rail_xor("x")
        xor.set_level_cap(3, 1, 16.0)
        waves = per_computation_currents(xor, PAIRS_C0 + PAIRS_C1)
        signature = signature_from_traces(waves[:2], waves[2:])
        assert signature.max_abs() > 0

    def test_simulated_signature_grows_with_imbalance(self):
        """Fig. 7c vs 7d: doubling the imbalance strengthens the signature."""
        def energy(extra_cap):
            xor = build_dual_rail_xor("x")
            xor.set_level_cap(1, 1, extra_cap)
            xor.set_level_cap(1, 2, extra_cap)
            waves = per_computation_currents(xor, PAIRS_C0 + PAIRS_C1)
            return signature_from_traces(waves[:2], waves[2:]).energy()

        assert energy(32.0) > energy(16.0) > 0

    def test_formal_and_simulated_signatures_correlate(self):
        """Section V validation: the formal model predicts the simulated shape.

        The formal profile starts at the beginning of the evaluation phase
        while the simulated trace includes the handshake lead-in, so both
        signatures are re-based at their first significant deviation before
        being correlated.
        """
        def rebase(waveform):
            samples = np.abs(waveform.samples)
            threshold = 0.02 * samples.max()
            start = int(np.argmax(samples > threshold))
            return Waveform(waveform.samples[start:], waveform.dt, 0.0)

        xor = build_dual_rail_xor("x")
        xor.set_level_cap(2, 1, 24.0)
        model = FormalCurrentModel.from_block(xor)
        formal = rebase(formal_signature(model))
        waves = per_computation_currents(xor, PAIRS_C0 + PAIRS_C1)
        simulated_full = rebase(signature_from_traces(waves[:2], waves[2:]))
        simulated = Waveform(simulated_full.samples[:len(formal)], formal.dt, 0.0)
        assert formal.max_abs() > 0 and simulated.max_abs() > 0
        assert compare_formal_and_simulated(formal, simulated) > 0.2


class TestPeakCounting:
    def test_zero_signature_has_no_peaks(self):
        assert signature_peak_count(Waveform(np.zeros(100), 1e-12, 0.0)) == 0

    def test_single_peak_counted_once(self):
        samples = np.zeros(200)
        samples[50:60] = 1.0
        assert signature_peak_count(Waveform(samples, 1e-12, 0.0)) == 1

    def test_two_separated_peaks(self):
        samples = np.zeros(400)
        samples[50:60] = 1.0
        samples[300:310] = -0.9
        assert signature_peak_count(Waveform(samples, 1e-12, 0.0)) == 2
