"""Focused tests of the formal symmetry verification (repro.graph.symmetry).

Exercises the symmetry-group detection on the paper's XOR tree: cone
extraction bounded at channel/acknowledge boundaries, per-level structural
profiles, detection of gate-count and cell-type asymmetries, and the
whole-block verification over a multi-bit XOR bank.
"""

import pytest

from repro.circuits import Netlist, build_dual_rail_xor, build_xor_bank
from repro.circuits.channels import ChannelSpec
from repro.graph import (
    build_circuit_graph,
    compare_channel_symmetry,
    compute_levels,
    cone_profile,
    rail_cone,
    verify_block_symmetry,
)


@pytest.fixture
def xor_block():
    return build_dual_rail_xor("x")


@pytest.fixture
def xor_graph(xor_block):
    return build_circuit_graph(xor_block.netlist)


class TestConeExtraction:
    def test_cones_cover_the_whole_tree(self, xor_block, xor_graph):
        channel = xor_block.outputs[0]
        for rail in channel.rails:
            cone = rail_cone(xor_block.netlist, xor_graph, rail)
            assert set(cone) == set(xor_block.rail_cones[rail])

    def test_cone_profile_levels_match_structure(self, xor_block, xor_graph):
        """Each XOR rail cone: one output Muller, one OR, two input Mullers."""
        channel = xor_block.outputs[0]
        levels = compute_levels(xor_graph)
        for rail in channel.rails:
            cone = rail_cone(xor_block.netlist, xor_graph, rail)
            profile = cone_profile(xor_graph, rail, cone, levels=levels)
            assert profile.size == 4
            assert profile.depth == 3
            per_level = [profile.gates_per_level[level]
                         for level in sorted(profile.gates_per_level)]
            assert per_level == [2, 1, 1]
            leaf_level = min(profile.cells_per_level)
            assert profile.cells_per_level[leaf_level]["MULLER2"] == 2

    def test_stop_at_bounds_the_cone(self, xor_block, xor_graph):
        channel = xor_block.outputs[0]
        rail = channel.rails[0]
        full = rail_cone(xor_block.netlist, xor_graph, rail)
        driver = xor_block.netlist.net(rail).driver.instance
        bounded = rail_cone(xor_block.netlist, xor_graph, rail,
                            stop_at={driver})
        assert bounded == [driver]
        assert len(full) > 1

    def test_undriven_rail_gives_empty_cone(self, xor_graph):
        netlist = Netlist("floating")
        netlist.add_net("lone_r0")
        assert rail_cone(netlist, xor_graph, "lone_r0") == []


class TestSymmetryDetection:
    def test_xor_tree_is_symmetric(self, xor_block, xor_graph):
        report = compare_channel_symmetry(xor_block.netlist, xor_graph,
                                          xor_block.outputs[0])
        assert report.is_symmetric
        assert report.mismatches == []
        sizes = {profile.size for profile in report.profiles}
        assert sizes == {4}

    def test_gate_count_asymmetry_detected(self):
        """An extra buffer on one rail breaks the per-level gate counts."""
        netlist = Netlist("unbal")
        netlist.add_input("a_r0")
        netlist.add_input("a_r1")
        netlist.add_net("m0")
        netlist.add_net("c_r0", channel="c", rail=0)
        netlist.add_net("c_r1", channel="c", rail=1)
        netlist.add_instance("g0a", "BUF", {"A": "a_r0", "Z": "m0"})
        netlist.add_instance("g0b", "BUF", {"A": "m0", "Z": "c_r0"})
        netlist.add_instance("g1", "BUF", {"A": "a_r1", "Z": "c_r1"})
        graph = build_circuit_graph(netlist)
        channel = ChannelSpec("c").declare(netlist)
        report = compare_channel_symmetry(netlist, graph, channel)
        assert not report.is_symmetric
        assert any("level" in message for message in report.mismatches)

    def test_cell_type_asymmetry_detected_only_when_required(self):
        """Same gate counts, different cell types: flagged by the strict
        check, tolerated by the relaxed one."""
        netlist = Netlist("celltypes")
        netlist.add_input("a_r0")
        netlist.add_input("a_r1")
        netlist.add_net("c_r0", channel="c", rail=0)
        netlist.add_net("c_r1", channel="c", rail=1)
        netlist.add_instance("g0", "BUF", {"A": "a_r0", "Z": "c_r0"})
        netlist.add_instance("g1", "INV", {"A": "a_r1", "Z": "c_r1"})
        graph = build_circuit_graph(netlist)
        channel = ChannelSpec("c").declare(netlist)
        strict = compare_channel_symmetry(netlist, graph, channel)
        assert not strict.is_symmetric
        assert any("cell types differ" in message
                   for message in strict.mismatches)
        relaxed = compare_channel_symmetry(netlist, graph, channel,
                                           require_same_cells=False)
        assert relaxed.is_symmetric

    def test_acknowledge_nets_excluded_from_cones(self, xor_block, xor_graph):
        """The backward ack edges must not leak into the data cones."""
        channel = xor_block.outputs[0]
        for rail in channel.rails:
            cone = rail_cone(xor_block.netlist, xor_graph, rail)
            for instance in cone:
                assert "ack" not in instance.lower()


class TestBlockVerification:
    def test_xor_bank_fully_symmetric(self):
        bank = build_xor_bank(4, "w")
        graph = build_circuit_graph(bank.netlist)
        reports = verify_block_symmetry(bank.netlist, graph,
                                        bank.output_channels())
        assert len(reports) == 4
        assert all(report.is_symmetric for report in reports)
        # Symmetry groups: every bit's rail cones share one structural class.
        signatures = {
            tuple(sorted((level, count)
                         for level, count in profile.gates_per_level.items()))
            for report in reports for profile in report.profiles
        }
        assert len(signatures) == 1

    def test_reports_carry_channel_names(self):
        bank = build_xor_bank(2, "w")
        graph = build_circuit_graph(bank.netlist)
        reports = verify_block_symmetry(bank.netlist, graph,
                                        bank.output_channels())
        names = {report.channel for report in reports}
        assert len(names) == 2
