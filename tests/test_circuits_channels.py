"""Tests of 1-of-N channel encoding and the four-phase value model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import (
    BusSpec,
    ChannelSpec,
    ChannelState,
    EncodingError,
    Logic,
    Netlist,
    dual_rail,
    one_of_n,
)


class TestChannelSpec:
    def test_dual_rail_encoding_matches_table1(self):
        """Table 1 of the paper: 0 -> (1, 0), 1 -> (0, 1), invalid -> (0, 0)."""
        channel = dual_rail("a")
        assert channel.encode(0) == (Logic.HIGH, Logic.LOW)
        assert channel.encode(1) == (Logic.LOW, Logic.HIGH)
        assert channel.encode(None) == (Logic.LOW, Logic.LOW)

    def test_decode_roundtrip(self):
        channel = one_of_n("d", 4)
        for value in range(4):
            assert channel.decode(channel.encode(value)) == value
        assert channel.decode(channel.encode(None)) is None

    def test_illegal_codeword_rejected(self):
        channel = dual_rail("a")
        with pytest.raises(EncodingError):
            channel.decode((Logic.HIGH, Logic.HIGH))

    def test_out_of_range_value_rejected(self):
        with pytest.raises(EncodingError):
            dual_rail("a").encode(2)

    def test_wrong_rail_count_rejected(self):
        with pytest.raises(EncodingError):
            dual_rail("a").decode((Logic.LOW,))

    def test_state_classification(self):
        channel = one_of_n("d", 3)
        assert channel.state(channel.encode(None)) is ChannelState.NULL
        assert channel.state(channel.encode(2)) is ChannelState.VALID
        assert channel.state((Logic.HIGH, Logic.HIGH, Logic.LOW)) is ChannelState.ILLEGAL

    def test_radix_must_be_at_least_two(self):
        with pytest.raises(ValueError):
            ChannelSpec("x", radix=1)

    def test_rail_names(self):
        channel = dual_rail("data")
        assert channel.rail_names == ("data_r0", "data_r1")
        assert channel.ack_name == "data_ack"
        with pytest.raises(IndexError):
            channel.rail_name(5)

    def test_transitions_per_handshake_constant(self):
        """The security property of Section II: 2 transitions per handshake
        regardless of the transmitted value."""
        for radix in (2, 3, 4, 8):
            assert one_of_n("c", radix).transitions_per_handshake() == 2

    def test_declare_annotates_netlist(self):
        netlist = Netlist("top")
        nets = dual_rail("q").declare(netlist, block="blk")
        assert netlist.net("q_r0").channel == "q"
        assert netlist.net("q_r1").rail == 1
        assert nets.ack == "q_ack"

    @given(st.integers(min_value=2, max_value=16), st.data())
    @settings(max_examples=30, deadline=None)
    def test_encode_is_one_hot(self, radix, data):
        """Property: every valid codeword has exactly one rail high."""
        channel = one_of_n("p", radix)
        value = data.draw(st.integers(min_value=0, max_value=radix - 1))
        rails = channel.encode(value)
        assert sum(1 for r in rails if r is Logic.HIGH) == 1
        assert channel.decode(rails) == value


class TestBusSpec:
    def test_width_and_channels(self):
        bus = BusSpec("w", 8)
        assert len(bus) == 8
        assert bus.channel(3).name == "w_b3"
        with pytest.raises(IndexError):
            bus.channel(8)

    def test_word_roundtrip(self):
        bus = BusSpec("w", 16)
        rails = bus.encode_word(0xBEEF)
        assert bus.decode_word(rails) == 0xBEEF

    def test_null_word(self):
        bus = BusSpec("w", 4)
        assert bus.decode_word(bus.encode_word(None)) is None

    def test_word_out_of_range(self):
        with pytest.raises(EncodingError):
            BusSpec("w", 4).encode_word(16)

    def test_partially_valid_rejected(self):
        bus = BusSpec("w", 2)
        rails = bus.encode_word(1)
        rails[1] = (Logic.LOW, Logic.LOW)
        with pytest.raises(EncodingError):
            bus.decode_word(rails)

    def test_declare(self):
        netlist = Netlist("top")
        channels = BusSpec("bus", 4).declare(netlist)
        assert len(channels) == 4
        assert netlist.net("bus_b2_r1").channel == "bus_b2"

    @given(st.integers(min_value=1, max_value=24), st.data())
    @settings(max_examples=30, deadline=None)
    def test_word_roundtrip_property(self, width, data):
        bus = BusSpec("w", width)
        value = data.draw(st.integers(min_value=0, max_value=(1 << width) - 1))
        assert bus.decode_word(bus.encode_word(value)) == value

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            BusSpec("w", 0)
