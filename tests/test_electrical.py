"""Tests of the electrical substrate: technology, capacitance, waveforms, noise."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import build_dual_rail_xor
from repro.electrical import (
    BackgroundActivityNoise,
    GaussianNoise,
    HCMOS9_LIKE,
    NoNoise,
    Technology,
    Waveform,
    WaveformError,
    align_waveforms,
    apply_process_variation,
    average_waveform,
    block_current,
    difference_waveform,
    exponential_pulse,
    node_capacitance,
    per_computation_currents,
    scaled_technology,
    switching_energy_fj,
    synthesize_current,
    transition_time_s,
    triangular_pulse,
)
from repro.circuits.validate import simulate_two_operand_block


class TestTechnology:
    def test_defaults_match_paper(self):
        assert HCMOS9_LIKE.default_net_cap_ff == pytest.approx(8.0)

    def test_wire_cap_linear(self):
        tech = HCMOS9_LIKE
        assert tech.wire_cap_ff(0.0) == pytest.approx(tech.via_cap_ff)
        assert tech.wire_cap_ff(10.0) > tech.wire_cap_ff(5.0)
        with pytest.raises(ValueError):
            tech.wire_cap_ff(-1.0)

    def test_switching_energy(self):
        tech = Technology(vdd=1.0)
        assert tech.switching_energy_fj(10.0) == pytest.approx(10.0)

    def test_scaled_technology(self):
        scaled = scaled_technology(2.0)
        assert scaled.default_net_cap_ff == pytest.approx(16.0)
        with pytest.raises(ValueError):
            scaled_technology(0.0)

    def test_with_override(self):
        custom = HCMOS9_LIKE.with_(vdd=1.0)
        assert custom.vdd == 1.0
        assert HCMOS9_LIKE.vdd == 1.2


class TestCapacitance:
    def test_breakdown_components(self):
        xor = build_dual_rail_xor("x")
        net = xor.net_at(2, 1)
        breakdown = node_capacitance(xor.netlist, net)
        assert breakdown.routing_ff == pytest.approx(8.0)
        assert breakdown.fanout_ff > 0
        assert breakdown.total_ff == pytest.approx(
            breakdown.load_ff + breakdown.parasitic_ff + breakdown.short_circuit_ff
        )

    def test_transition_time_monotone_in_cap(self):
        xor = build_dual_rail_xor("x")
        net = xor.net_at(3, 1)
        before = transition_time_s(xor.netlist, net)
        xor.netlist.set_routing_cap(net, 32.0)
        assert transition_time_s(xor.netlist, net) > before

    def test_switching_energy_positive(self):
        xor = build_dual_rail_xor("x")
        assert switching_energy_fj(xor.netlist, xor.net_at(1, 1)) > 0

    def test_process_variation_changes_caps(self):
        xor = build_dual_rail_xor("x")
        before = {net.name: net.routing_cap_ff for net in xor.netlist.nets()}
        apply_process_variation(xor.netlist, sigma_ff=0.2, seed=3)
        after = {net.name: net.routing_cap_ff for net in xor.netlist.nets()}
        changed = [name for name in before if before[name] != after[name]]
        assert changed
        assert all(cap >= 0 for cap in after.values())

    def test_process_variation_reproducible(self):
        a = build_dual_rail_xor("x")
        b = build_dual_rail_xor("x")
        apply_process_variation(a.netlist, sigma_ff=0.2, seed=11)
        apply_process_variation(b.netlist, sigma_ff=0.2, seed=11)
        for net in a.netlist.net_names():
            assert a.netlist.net(net).routing_cap_ff == pytest.approx(
                b.netlist.net(net).routing_cap_ff
            )


class TestWaveform:
    def test_zeros_and_duration(self):
        waveform = Waveform.zeros(1e-9, 1e-12)
        assert len(waveform) == 1000
        assert waveform.duration == pytest.approx(1e-9)

    def test_triangular_pulse_area_is_charge(self):
        dt = 1e-12
        pulse = triangular_pulse(2e-15, 50e-12, dt)
        assert np.sum(pulse) * dt == pytest.approx(2e-15, rel=1e-9)

    def test_exponential_pulse_area(self):
        dt = 1e-12
        pulse = exponential_pulse(3e-15, 20e-12, dt)
        assert np.sum(pulse) * dt == pytest.approx(3e-15, rel=1e-9)

    def test_invalid_pulse_width(self):
        with pytest.raises(WaveformError):
            triangular_pulse(1e-15, 0.0, 1e-12)

    def test_add_and_subtract(self):
        a = Waveform(np.ones(10), 1e-12, 0.0)
        b = Waveform(np.ones(5), 1e-12, 2e-12)
        total = a + b
        assert total.value_at(3e-12) == pytest.approx(2.0)
        diff = a - b
        assert diff.value_at(3e-12) == pytest.approx(0.0)
        assert diff.value_at(0.0) == pytest.approx(1.0)

    def test_incompatible_dt_rejected(self):
        a = Waveform(np.ones(4), 1e-12, 0.0)
        b = Waveform(np.ones(4), 2e-12, 0.0)
        with pytest.raises(WaveformError):
            _ = a + b

    def test_peak_and_integral(self):
        samples = np.zeros(100)
        samples[40] = -3.0
        waveform = Waveform(samples, 1e-12, 0.0)
        time, value = waveform.peak()
        assert time == pytest.approx(40e-12)
        assert value == pytest.approx(-3.0)
        assert waveform.max_abs() == pytest.approx(3.0)
        assert waveform.integral() == pytest.approx(-3e-12)

    def test_average_and_difference(self):
        a = Waveform(np.full(10, 2.0), 1e-12, 0.0)
        b = Waveform(np.full(10, 4.0), 1e-12, 0.0)
        assert average_waveform([a, b]).value_at(0.0) == pytest.approx(3.0)
        assert difference_waveform([a], [b]).value_at(0.0) == pytest.approx(-2.0)

    def test_align_pads_to_common_base(self):
        a = Waveform(np.ones(5), 1e-12, 0.0)
        b = Waveform(np.ones(5), 1e-12, 5e-12)
        aligned = align_waveforms([a, b])
        assert len(aligned[0]) == len(aligned[1]) == 10

    def test_resample(self):
        a = Waveform(np.ones(5), 1e-12, 0.0)
        assert len(a.resample(8)) == 8
        assert len(a.resample(3)) == 3

    @given(st.lists(st.floats(min_value=-1.0, max_value=1.0), min_size=1, max_size=64),
           st.lists(st.floats(min_value=-1.0, max_value=1.0), min_size=1, max_size=64))
    @settings(max_examples=30, deadline=None)
    def test_addition_is_commutative(self, xs, ys):
        a = Waveform(np.array(xs), 1e-12, 0.0)
        b = Waveform(np.array(ys), 1e-12, 0.0)
        left = (a + b).samples
        right = (b + a).samples
        assert np.allclose(left, right)

    @given(st.lists(st.floats(min_value=-5.0, max_value=5.0), min_size=2, max_size=64))
    @settings(max_examples=30, deadline=None)
    def test_energy_nonnegative(self, xs):
        waveform = Waveform(np.array(xs), 1e-12, 0.0)
        assert waveform.energy() >= 0.0


class TestNoise:
    def test_no_noise_identity(self):
        waveform = Waveform(np.ones(16), 1e-12, 0.0)
        assert np.allclose(NoNoise().apply(waveform).samples, waveform.samples)

    def test_gaussian_noise_changes_samples(self):
        waveform = Waveform(np.zeros(256), 1e-12, 0.0)
        noisy = GaussianNoise(sigma=1e-6, seed=1).apply(waveform)
        assert noisy.samples.std() > 0

    def test_gaussian_zero_sigma(self):
        waveform = Waveform(np.ones(16), 1e-12, 0.0)
        assert np.allclose(GaussianNoise(sigma=0.0).apply(waveform).samples, 1.0)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            GaussianNoise(sigma=-1.0)

    def test_background_activity_adds_pulses(self):
        waveform = Waveform(np.zeros(1000), 1e-12, 0.0)
        noisy = BackgroundActivityNoise(pulse_rate_per_sample=0.05, amplitude=1e-5,
                                        seed=2).apply(waveform)
        assert noisy.samples.sum() > 0


class TestCurrentSynthesis:
    def test_charge_conservation(self):
        """The integral of the synthesized current equals the switched charge."""
        xor = build_dual_rail_xor("x")
        result = simulate_two_operand_block(xor, [(0, 1)])
        block_nets = set(xor.internal_nets())
        trace = synthesize_current(xor.netlist, result.trace,
                                   include_nets=block_nets)
        expected = 0.0
        for transition in result.trace.transitions:
            if transition.net in block_nets:
                expected += node_capacitance(xor.netlist, transition.net).total_farad \
                    * HCMOS9_LIKE.vdd
        assert trace.total.integral() == pytest.approx(expected, rel=1e-3)

    def test_per_level_decomposition_sums_to_total(self):
        xor = build_dual_rail_xor("x")
        result = block_current(xor, [(1, 0)])
        combined = np.zeros(len(result.current.total))
        for waveform in result.current.per_level.values():
            combined += waveform.samples
        assert np.allclose(combined, result.current.total.samples)

    def test_balanced_block_traces_identical(self):
        """With equal capacitances all four computations draw the same current."""
        xor = build_dual_rail_xor("x")
        waves = per_computation_currents(xor, [(0, 0), (0, 1), (1, 0), (1, 1)])
        reference = waves[0].samples
        for waveform in waves[1:]:
            assert np.allclose(waveform.resample(len(reference)).samples, reference)

    def test_unbalanced_block_traces_differ(self):
        xor = build_dual_rail_xor("x")
        xor.set_level_cap(3, 1, 32.0)
        waves = per_computation_currents(xor, [(0, 0), (0, 1)])
        a = waves[0].samples
        b = waves[1].resample(len(a)).samples
        assert not np.allclose(a, b)
