"""Tests of the secure design flow orchestration (Section VI)."""

import pytest

from repro.asyncaes import AesArchitecture, AesNetlistGenerator
from repro.circuits import build_xor_bank
from repro.core import (
    FlowConfig,
    compare_flat_vs_hierarchical,
    run_secure_flow,
)


def _small_aes_netlist():
    architecture = AesArchitecture(word_width=8, detail=0.05)
    return AesNetlistGenerator(architecture, name="aes_small").build()


class TestRunSecureFlow:
    def test_flow_produces_report_and_area(self):
        netlist = _small_aes_netlist()
        config = FlowConfig(criterion_bound=10.0, effort=0.3, max_iterations=1)
        result = run_secure_flow(netlist, config)
        assert result.passed
        assert len(result.iterations) == 1
        assert len(result.criterion) > 0
        assert result.area.die_area_um2 > 0
        assert "PASS" in result.summary()

    def test_flow_iterates_when_bound_not_met(self):
        netlist = _small_aes_netlist()
        config = FlowConfig(criterion_bound=0.0, effort=0.3, max_iterations=2)
        result = run_secure_flow(netlist, config)
        assert not result.passed
        assert len(result.iterations) == 2
        # Successive iterations tighten the block utilization.
        assert result.iterations[1].block_utilization > \
            result.iterations[0].block_utilization

    def test_best_iteration_returned(self):
        netlist = _small_aes_netlist()
        config = FlowConfig(criterion_bound=0.0, effort=0.3, max_iterations=2)
        result = run_secure_flow(netlist, config)
        best = min(i.max_dissymmetry for i in result.iterations)
        assert result.max_dissymmetry == pytest.approx(best)


class TestCompareFlows:
    def test_comparison_on_xor_bank(self):
        config = FlowConfig(criterion_bound=5.0, effort=0.3, max_iterations=1)
        comparison = compare_flat_vs_hierarchical(
            lambda: build_xor_bank(4, "w").netlist,
            config=config, design_name="xor_bank",
        )
        assert comparison.flat.design.flow == "flat"
        assert comparison.hierarchical.design.flow == "hierarchical"
        assert comparison.criterion_improvement > 0
        assert "area overhead" in comparison.summary()

    def test_comparison_on_small_aes_improves_criterion(self):
        """The headline claim of Table 2: the hierarchical flow reduces the
        worst channel dissymmetry of the AES."""
        config = FlowConfig(criterion_bound=0.3, effort=0.5, max_iterations=1)
        comparison = compare_flat_vs_hierarchical(
            _small_aes_netlist, config=config, design_name="aes_small",
        )
        assert comparison.hierarchical.max_dissymmetry < \
            comparison.flat.max_dissymmetry
        assert comparison.hierarchical.criterion.mean_dissymmetry < \
            comparison.flat.criterion.mean_dissymmetry
        # The hierarchical flow costs area, as the paper reports.
        assert comparison.area_overhead > 0
