"""Tests of the QDI cell builders: dual-rail XOR/AND/OR, half buffer, XOR bank."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import (
    build_completion_tree,
    build_dual_rail_and2,
    build_dual_rail_or2,
    build_dual_rail_xor,
    build_half_buffer,
    build_xor_bank,
    check_constant_transition_count,
    check_one_hot_discipline,
    check_structural_balance,
    simulate_two_operand_block,
)
from repro.circuits.builder import BlockBuilder
from repro.circuits.netlist import Netlist

ALL_PAIRS = [(0, 0), (0, 1), (1, 0), (1, 1)]


class TestDualRailXor:
    def test_structure_matches_fig5(self):
        """Fig. 5: 9 gates over 4 levels (4 Muller, 2 OR, 2 Cr, 1 completion)."""
        xor = build_dual_rail_xor("x")
        assert xor.netlist.instance_count == 9
        assert xor.depth == 4
        assert xor.gates_per_level() == {1: 4, 2: 2, 3: 2, 4: 1}

    def test_truth_table(self):
        xor = build_dual_rail_xor("x")
        result = simulate_two_operand_block(xor, ALL_PAIRS)
        assert result.outputs[0] == [a ^ b for a, b in ALL_PAIRS]

    def test_constant_transition_count(self):
        """Balance property of Section II: same transition count for any data."""
        xor = build_dual_rail_xor("x")
        count = check_constant_transition_count(xor, ALL_PAIRS)
        assert count == 8  # 4 gates switching, evaluation + return-to-zero

    def test_structural_balance(self):
        assert check_structural_balance(build_dual_rail_xor("x")) == []

    def test_one_hot_discipline_respected(self):
        xor = build_dual_rail_xor("x")
        result = simulate_two_operand_block(xor, ALL_PAIRS)
        assert check_one_hot_discipline(result.trace, xor.outputs[0]) == []

    def test_default_net_capacitance_applied(self):
        xor = build_dual_rail_xor("x", default_net_cap_ff=8.0)
        caps = xor.level_caps()
        assert all(cap == pytest.approx(8.0) for cap in caps.values())

    def test_set_level_cap(self):
        xor = build_dual_rail_xor("x")
        xor.set_level_cap(3, 1, 16.0)
        assert xor.netlist.net(xor.net_at(3, 1)).routing_cap_ff == pytest.approx(16.0)
        with pytest.raises(KeyError):
            xor.net_at(5, 1)

    def test_grid_positions_match_rails(self):
        xor = build_dual_rail_xor("x")
        c0, c1 = xor.outputs[0].rails
        assert xor.instance_at(3, 1) in xor.rail_cones[c0]
        assert xor.instance_at(3, 2) in xor.rail_cones[c1]

    @given(st.lists(st.tuples(st.integers(0, 1), st.integers(0, 1)),
                    min_size=1, max_size=6))
    @settings(max_examples=20, deadline=None)
    def test_xor_function_property(self, pairs):
        xor = build_dual_rail_xor("x")
        result = simulate_two_operand_block(xor, pairs)
        assert result.outputs[0] == [a ^ b for a, b in pairs]


class TestOtherCells:
    def test_and2_truth_table(self):
        block = build_dual_rail_and2("a")
        result = simulate_two_operand_block(block, ALL_PAIRS)
        assert result.outputs[0] == [a & b for a, b in ALL_PAIRS]

    def test_or2_truth_table(self):
        block = build_dual_rail_or2("o")
        result = simulate_two_operand_block(block, ALL_PAIRS)
        assert result.outputs[0] == [a | b for a, b in ALL_PAIRS]

    def test_and2_balanced_transition_count(self):
        block = build_dual_rail_and2("a")
        assert check_constant_transition_count(block, ALL_PAIRS) == 8

    def test_or2_balanced_transition_count(self):
        block = build_dual_rail_or2("o")
        assert check_constant_transition_count(block, ALL_PAIRS) == 8

    def test_half_buffer_structure(self):
        hb = build_half_buffer("h")
        assert hb.depth == 2
        assert hb.gates_per_level() == {1: 2, 2: 1}

    def test_half_buffer_radix_4(self):
        hb = build_half_buffer("h4", radix=4)
        assert len(hb.outputs[0].rails) == 4
        assert hb.gates_per_level()[1] == 4

    def test_half_buffer_bad_radix(self):
        with pytest.raises(ValueError):
            build_half_buffer("bad", radix=7)


class TestCompletionTree:
    def test_single_input_passthrough(self):
        netlist = Netlist("cd")
        builder = BlockBuilder(netlist, "cd")
        valid = builder.net("v0")
        tree = build_completion_tree(builder, [valid])
        assert tree.output == valid
        assert tree.instances == []

    def test_tree_depth(self):
        netlist = Netlist("cd")
        builder = BlockBuilder(netlist, "cd")
        nets = [builder.net(f"v{i}") for i in range(8)]
        tree = build_completion_tree(builder, nets)
        assert tree.depth == 3
        assert len(tree.instances) == 7

    def test_empty_rejected(self):
        netlist = Netlist("cd")
        builder = BlockBuilder(netlist, "cd")
        with pytest.raises(ValueError):
            build_completion_tree(builder, [])


class TestXorBank:
    def test_width_and_structure(self):
        bank = build_xor_bank(4, "w")
        assert bank.width == 4
        # 9 gates per bit plus 3 completion Muller gates.
        assert bank.netlist.instance_count == 4 * 9 + 3

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            build_xor_bank(0)

    def test_channels_accessible(self):
        bank = build_xor_bank(3, "w")
        assert len(bank.input_channels(0)) == 3
        assert len(bank.output_channels()) == 3
        assert bank.bit(1).name == "w_bit1"
