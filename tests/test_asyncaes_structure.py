"""Tests of the asynchronous AES architecture description and netlist generator."""

import pytest

from repro.asyncaes import (
    AesArchitecture,
    AesNetlistGenerator,
    build_aes_netlist,
)


class TestArchitecture:
    def test_default_architecture_is_consistent(self):
        assert AesArchitecture().validate() == []

    def test_block_and_channel_lookup(self):
        arch = AesArchitecture()
        assert arch.block("addkey0").side == "core"
        assert arch.channel("subkey_to_ark").source == "duplicate"
        with pytest.raises(KeyError):
            arch.block("nonexistent")
        with pytest.raises(KeyError):
            arch.channel("nonexistent")

    def test_fig8_blocks_present(self):
        names = set(AesArchitecture().block_names())
        for expected in ("addkey0", "mixcolumn", "addroundkey", "addlastkey",
                         "bytesub0", "xor_key", "fifo_key", "duplicate"):
            assert expected in names

    def test_core_and_key_paths_connected(self):
        """The Sub-key channel of Fig. 8 joins the two self-timed loops."""
        arch = AesArchitecture()
        key_to_core = [c for c in arch.channels
                       if c.source == "duplicate" and c.sink in
                       ("addkey0", "addroundkey", "addlastkey")]
        assert len(key_to_core) == 3

    def test_incoming_outgoing(self):
        arch = AesArchitecture()
        assert any(c.name == "mux41_to_addkey0" for c in arch.incoming("addkey0"))
        assert any(c.name == "addkey0_to_mux" for c in arch.outgoing("addkey0"))

    def test_word_width_scaling(self):
        arch = AesArchitecture(word_width=8)
        data_channels = [c for c in arch.channels if c.width > 4]
        assert all(c.width == 8 for c in data_channels)
        # Control channels keep their narrow width.
        assert arch.channel("core_ctrl").width == 4

    def test_gate_budget_scaling(self):
        full = AesArchitecture(detail=1.0)
        small = AesArchitecture(detail=0.25)
        assert small.total_gate_budget() < full.total_gate_budget()

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            AesArchitecture(word_width=2)
        with pytest.raises(ValueError):
            AesArchitecture(detail=0.0)

    def test_channel_naming_helpers(self):
        channel = AesArchitecture().channel("data_in")
        assert channel.channel_name(3) == "data_in_b3"
        assert channel.rail_net(3, 1) == "data_in_b3_r1"
        assert channel.ack_net(3) == "data_in_b3_ack"


class TestNetlistGenerator:
    @pytest.fixture(scope="class")
    def small_netlist(self):
        return build_aes_netlist(word_width=8, detail=0.05, name="aes8")

    def test_structure_is_valid(self, small_netlist):
        assert small_netlist.validate() == []

    def test_every_block_has_cells(self, small_netlist):
        blocks = set(small_netlist.blocks())
        for block in AesArchitecture().block_names():
            assert block in blocks

    def test_channel_nets_annotated(self, small_netlist):
        arch = AesArchitecture(word_width=8)
        net = small_netlist.net(arch.channel("addkey0_to_mux").rail_net(2, 1))
        assert net.channel == "addkey0_to_mux_b2"
        assert net.rail == 1

    def test_channel_rails_driven_and_loaded(self, small_netlist):
        arch = AesArchitecture(word_width=8)
        for bit in range(8):
            for rail in range(2):
                net = small_netlist.net(arch.channel("mixcol_to_ark").rail_net(bit, rail))
                assert net.driver is not None
                assert net.driver.instance.startswith("mixcolumn/")
                sink_blocks = {s.instance.split("/")[0] for s in net.sinks}
                assert "addroundkey" in sink_blocks

    def test_channel_count_matches_architecture(self, small_netlist):
        arch = AesArchitecture(word_width=8)
        expected = sum(c.width for c in arch.channels)
        assert len(small_netlist.channels()) == expected

    def test_detail_controls_size(self):
        small = build_aes_netlist(word_width=8, detail=0.05)
        large = build_aes_netlist(word_width=8, detail=0.5)
        assert large.instance_count > small.instance_count

    def test_invalid_architecture_rejected(self):
        arch = AesArchitecture()
        # Corrupt the channel list to point at an unknown block.
        from repro.asyncaes.architecture import ChannelBusSpec
        arch.channels = arch.channels + (ChannelBusSpec("bad", "nowhere", "mux"),)
        with pytest.raises(ValueError):
            AesNetlistGenerator(arch)
