"""Tests of the hardening pass pipeline (repro.harden).

Covers the pass-manager refactor (flat/hierarchical flows as pass
configurations, equivalence with the primitive steps), the repair loop
(``repair-until(d_A ≤ bound)`` with dummy-load / reposition / fence-resize
passes), the provenance records, hardening edge cases (zero-cap rails,
1-of-N channels, provable no-op on balanced designs), the generator cache
invalidation contract of the netlist mutation API, and the campaign's
``add_hardening`` grid dimension (the paper's measure→improve loop end to
end: the hardened design beats the hierarchical flow on the criterion and
defeats the attacks the flat design falls to).
"""

import math

import numpy as np
import pytest

from repro.asyncaes import (
    AesArchitecture,
    AesNetlistGenerator,
    AesPowerTraceGenerator,
)
from repro.circuits import Netlist, build_xor_bank
from repro.core import (
    AesSboxSelection,
    AttackCampaign,
    channel_dissymmetry,
    evaluate_netlist_channels,
)
from repro.crypto.keys import PlaintextGenerator, random_key
from repro.electrical import GaussianNoise
from repro.harden import (
    DummyLoadPass,
    ExtractionPass,
    FenceResizePass,
    FlatPlacementPass,
    HardeningError,
    PassContext,
    PassPipeline,
    flat_pipeline,
    harden_design,
    hardening_pipeline,
    hierarchical_pipeline,
)
from repro.pnr import (
    FlatPlacer,
    HierarchicalPlacer,
    estimate_routing,
    extract_capacitances,
    run_flat_flow,
    run_hierarchical_flow,
)


def _channel_netlist(caps_by_channel):
    """A bare netlist whose channels carry the given routing capacitances."""
    netlist = Netlist("chan")
    for channel, caps in caps_by_channel.items():
        for rail, cap in enumerate(caps):
            net = netlist.add_net(f"{channel}_r{rail}", channel=channel,
                                  rail=rail)
            net.routing_cap_ff = cap
    return netlist


# --------------------------------------------------------------- equivalence
class TestFlowsArePipelineConfigurations:
    """The classic flows must be *exactly* the base pass pipelines."""

    def test_flat_pipeline_matches_primitive_steps(self):
        pipeline_netlist = build_xor_bank(5, "eq").netlist
        result = flat_pipeline(effort=0.5).run(pipeline_netlist, seed=9)

        reference_netlist = build_xor_bank(5, "eq").netlist
        placement = FlatPlacer(seed=9, effort=0.5).place(reference_netlist)
        routing = estimate_routing(reference_netlist, placement)
        extraction = extract_capacitances(reference_netlist, placement,
                                          routing=routing)
        assert result.design.extraction.caps_ff == extraction.caps_ff
        assert result.design.flow == "flat"
        assert result.design.name == "eq_flat"
        assert (pipeline_netlist.content_digest()
                == reference_netlist.content_digest())

    def test_hierarchical_pipeline_matches_primitive_steps(self):
        pipeline_netlist = build_xor_bank(5, "eq").netlist
        result = hierarchical_pipeline(effort=0.5).run(pipeline_netlist,
                                                       seed=4)

        reference_netlist = build_xor_bank(5, "eq").netlist
        placer = HierarchicalPlacer(seed=4, effort=0.5)
        placement = placer.place(reference_netlist)
        routing = estimate_routing(reference_netlist, placement)
        extraction = extract_capacitances(reference_netlist, placement,
                                          routing=routing)
        assert result.design.extraction.caps_ff == extraction.caps_ff
        assert result.design.flow == "hierarchical"
        assert result.design.name == "eq_hier"
        assert (pipeline_netlist.content_digest()
                == reference_netlist.content_digest())

    def test_run_flat_flow_wrapper_delegates_to_the_pipeline(self):
        wrapped = build_xor_bank(4, "eq").netlist
        design = run_flat_flow(wrapped, seed=2, effort=0.4)
        direct = build_xor_bank(4, "eq").netlist
        result = flat_pipeline(effort=0.4).run(direct, seed=2)
        assert design.extraction.caps_ff == result.design.extraction.caps_ff
        assert wrapped.content_digest() == direct.content_digest()

    def test_criterion_report_primed_by_extraction_pass(self):
        result = flat_pipeline(effort=0.3).run(
            build_xor_bank(3, "prime").netlist, seed=1)
        reference = evaluate_netlist_channels(result.netlist,
                                              design_name=result.design.name)
        assert result.criterion.max_dissymmetry == reference.max_dissymmetry
        assert len(result.criterion) == len(reference)


# ---------------------------------------------------------------- repair loop
class TestRepairLoop:
    def test_hardening_reaches_the_bound_on_a_flat_bank(self):
        netlist = build_xor_bank(6, "rep").netlist
        result = harden_design(netlist, base="flat", bound=0.05, seed=1,
                               effort=0.4)
        assert result.passed
        assert result.max_dissymmetry <= 0.05
        assert result.repair_iterations >= 1
        assert result.changed

    def test_provenance_records_cover_every_pass(self):
        netlist = build_xor_bank(6, "prov").netlist
        result = harden_design(netlist, base="flat", bound=0.05, seed=1,
                               effort=0.4)
        stages = [(r.stage, r.pass_name) for r in result.records]
        assert ("base", "place-flat") in stages
        assert ("base", "extract") in stages
        assert any(stage == "repair" for stage, _ in stages)
        # Repair passes that re-measured nets did so incrementally.
        repair_extractions = [r for r in result.records
                              if r.stage == "repair" and r.nets_reextracted]
        assert repair_extractions
        assert all(r.incremental for r in repair_extractions)
        table = result.provenance_table()
        assert "repair-dummy-load" in table
        assert "repair-reposition" in table

    def test_criterion_is_monotonically_closed(self):
        """After the dummy-load closure no channel is above the bound."""
        netlist = build_xor_bank(4, "mono").netlist
        result = harden_design(netlist, base="flat", bound=0.01, seed=6,
                               effort=0.3)
        assert result.criterion.violation_count(0.01) == 0
        assert result.dummy_cap_added_ff > 0.0

    def test_balanced_design_is_a_provable_noop(self):
        """A pipeline whose bound is already met must not touch the design."""
        plain = build_xor_bank(5, "noop").netlist
        flat_pipeline(effort=0.4).run(plain, seed=3)
        digest_before = plain.content_digest()

        hardened = build_xor_bank(5, "noop").netlist
        result = hardening_pipeline(base="flat", bound=1e9,
                                    effort=0.4).run(hardened, seed=3)
        assert result.passed
        assert result.repair_iterations == 0
        assert not result.changed
        assert hardened.content_digest() == digest_before

    def test_repair_without_bound_is_rejected(self):
        with pytest.raises(HardeningError):
            PassPipeline([FlatPlacementPass(), ExtractionPass()],
                         repair=[DummyLoadPass()])

    def test_unknown_repair_pass_name_rejected(self):
        with pytest.raises(HardeningError):
            hardening_pipeline(base="flat", repair=("mystery",))

    def test_unknown_base_flow_rejected(self):
        with pytest.raises(HardeningError):
            hardening_pipeline(base="diagonal")

    def test_hierarchical_base_supports_fence_resize(self):
        netlist = build_xor_bank(6, "fence").netlist
        result = harden_design(netlist, base="hierarchical", bound=0.02,
                               seed=2, effort=0.4)
        assert result.passed
        fence_records = [r for r in result.records
                         if r.pass_name == "repair-fence-resize"]
        assert fence_records  # the pass ran (whether or not it changed)

    def test_fence_resize_is_a_noop_on_flat_floorplans(self):
        netlist = build_xor_bank(4, "flatfence").netlist
        pipeline = PassPipeline(
            [FlatPlacementPass(effort=0.3), ExtractionPass()],
            repair=[FenceResizePass(bound=0.0)], bound=0.0,
            max_repair_iterations=1)
        result = pipeline.run(netlist, seed=1)
        record = [r for r in result.records
                  if r.pass_name == "repair-fence-resize"][0]
        assert not record.changed

    def test_reposition_honours_fences(self):
        """Cells moved by the reposition pass stay inside their regions."""
        netlist = build_xor_bank(6, "legal").netlist
        result = harden_design(netlist, base="hierarchical", bound=0.02,
                               seed=2, effort=0.4,
                               repair=("reposition", "dummy-load"))
        assert result.design.placement.check_legality() == []


# ----------------------------------------------------------------- edge cases
class TestHardeningEdgeCases:
    def test_zero_cap_rail_is_flagged_and_repaired(self):
        """An infinite d_A (zero-cap rail) is leaky — and repairable."""
        netlist = _channel_netlist({"dead_b0": [0.0, 5.0],
                                    "live_b1": [4.0, 4.0]})
        context = PassContext(netlist=netlist)
        report = context.evaluate()
        assert math.isinf(report.max_dissymmetry)
        assert math.isinf(report.mean_dissymmetry)
        assert not report.meets_bound(1e9)

        outcome = DummyLoadPass(bound=0.1).run(context)
        assert outcome.changed
        assert outcome.dummy_cap_added_ff == pytest.approx(5.0)
        after = context.evaluate()
        assert after.max_dissymmetry == 0.0

    def test_one_of_n_channel_equalized_across_all_rails(self):
        netlist = _channel_netlist({"quad_b0": [10.0, 12.0, 8.0, 20.0]})
        context = PassContext(netlist=netlist)
        context.evaluate()
        outcome = DummyLoadPass(bound=0.05).run(context)
        assert outcome.changed
        caps = [netlist.load_cap_ff(f"quad_b0_r{rail}") for rail in range(4)]
        assert caps == pytest.approx([20.0] * 4)
        assert channel_dissymmetry(caps) == 0.0
        assert context.evaluate().max_dissymmetry == 0.0

    def test_dummy_load_cap_limit_leaves_residual_violation(self):
        netlist = _channel_netlist({"wide_b0": [1.0, 100.0]})
        context = PassContext(netlist=netlist)
        context.evaluate()
        DummyLoadPass(bound=0.1, max_added_ff_per_net=10.0).run(context)
        after = context.evaluate()
        assert after.max_dissymmetry > 0.1  # capped: still flagged leaky

    def test_dummy_load_needs_load_cap_convention(self):
        netlist = _channel_netlist({"c_b0": [1.0, 2.0]})
        context = PassContext(netlist=netlist, use_load_cap=False)
        context.evaluate()
        with pytest.raises(HardeningError):
            DummyLoadPass(bound=0.1).run(context)

    def test_already_balanced_channels_are_untouched(self):
        netlist = _channel_netlist({"a_b0": [7.0, 7.0], "b_b1": [3.0, 3.0]})
        digest = netlist.content_digest()
        context = PassContext(netlist=netlist)
        context.evaluate()
        outcome = DummyLoadPass(bound=0.1).run(context)
        assert not outcome.changed
        assert netlist.content_digest() == digest


# ----------------------------------------------- generator cache invalidation
class TestGeneratorInvalidation:
    @pytest.fixture(scope="class")
    def placed_aes(self):
        key = random_key(16, seed=21)
        architecture = AesArchitecture(word_width=8, detail=0.1)
        netlist = AesNetlistGenerator(architecture, name="aes_inval").build()
        run_flat_flow(netlist, seed=5, effort=0.3)
        return key, architecture, netlist

    def test_analytic_generator_tracks_dummy_loads(self, placed_aes):
        key, architecture, netlist = placed_aes
        plaintexts = PlaintextGenerator(seed=3).batch(4)
        generator = AesPowerTraceGenerator(netlist, key,
                                           architecture=architecture)
        before = generator.trace_batch(plaintexts).matrix().copy()
        target = architecture.channels[0].rail_net(0, 0)
        netlist.add_dummy_load(target, 50.0)
        try:
            after = generator.trace_batch(plaintexts).matrix()
            fresh = AesPowerTraceGenerator(
                netlist, key, architecture=architecture
            ).trace_batch(plaintexts).matrix()
            assert not np.allclose(after, before)
            assert np.array_equal(after, fresh)
        finally:
            netlist.clear_dummy_loads()

    def test_simulator_generator_tracks_dummy_loads(self, placed_aes):
        from repro.asyncaes.simtrace import AesSimulatorTraceGenerator

        key, architecture, netlist = placed_aes
        plaintexts = PlaintextGenerator(seed=4).batch(2)
        generator = AesSimulatorTraceGenerator(netlist, key,
                                               architecture=architecture)
        before = generator.trace_batch(plaintexts).matrix().copy()
        target = architecture.channels[0].rail_net(0, 0)
        netlist.add_dummy_load(target, 50.0)
        try:
            after = generator.trace_batch(plaintexts).matrix()
            assert not np.allclose(after, before)
        finally:
            netlist.clear_dummy_loads()

    def test_rail_cap_queries_refresh(self, placed_aes):
        key, architecture, netlist = placed_aes
        generator = AesPowerTraceGenerator(netlist, key,
                                           architecture=architecture)
        bus = architecture.channels[0]
        before = generator.rail_cap_ff(bus.name, 0, 0)
        netlist.add_dummy_load(bus.rail_net(0, 0), 7.5)
        try:
            assert generator.rail_cap_ff(bus.name, 0, 0) == pytest.approx(
                before + 7.5)
        finally:
            netlist.clear_dummy_loads()


# --------------------------------------------------- acceptance: the full loop
@pytest.fixture(scope="module")
def hardening_reference():
    """Flat vs hierarchical vs hardened on the reference reduced AES."""
    key = random_key(16, seed=7)
    architecture = AesArchitecture(word_width=8, detail=0.1)

    def fresh(name):
        return AesNetlistGenerator(architecture, name=name).build()

    flat = fresh("aes_flat")
    run_flat_flow(flat, seed=5, effort=0.3)
    flat_report = evaluate_netlist_channels(flat)

    hier = fresh("aes_hier")
    run_hierarchical_flow(hier, seed=5, effort=1.0)
    hier_report = evaluate_netlist_channels(hier)

    hardened = fresh("aes_hardened")
    result = harden_design(hardened, base="flat", bound=0.02, seed=5,
                           effort=0.3)
    return {
        "key": key,
        "architecture": architecture,
        "fresh": fresh,
        "flat": flat,
        "flat_report": flat_report,
        "hier_report": hier_report,
        "hardened": hardened,
        "hardening": result,
    }


class TestHardeningAcceptance:
    def test_hardening_beats_both_reference_flows(self, hardening_reference):
        """The repair loop drives max d_A below the hierarchical flow's
        value, with at least a 5x reduction over the flat flow."""
        flat_max = hardening_reference["flat_report"].max_dissymmetry
        hier_max = hardening_reference["hier_report"].max_dissymmetry
        hard_max = hardening_reference["hardening"].max_dissymmetry
        assert hardening_reference["hardening"].passed
        assert hard_max < hier_max
        assert flat_max >= 5.0 * max(hard_max, 1e-12)

    def test_campaign_grid_shows_the_countermeasure_payoff(
            self, hardening_reference):
        """One campaign table: the flat design falls to DPA/CPA and fails
        TVLA; the hardened design at least doubles the trace budget and
        clears the noisy TVLA verdict."""
        key = hardening_reference["key"]
        campaign = AttackCampaign(
            key, architecture=hardening_reference["architecture"],
            mtd_start=20, mtd_step=20)
        campaign.add_design("flat", hardening_reference["flat"])
        campaign.add_design("hardened", hardening_reference["hardened"])
        campaign.add_selection(AesSboxSelection(byte_index=3, bit_index=0))
        campaign.add_attack("dpa")
        campaign.add_attack("cpa")
        campaign.add_noise("noiseless")
        campaign.add_noise("gaussian", lambda: GaussianNoise(6e-4, seed=17))
        campaign.add_assessment("tvla")
        result = campaign.run(trace_count=400, seed=3)

        for attack in ("dpa", "cpa-bit"):
            flat_row = result.row("flat", attack=attack, noise="noiseless")
            hard_row = result.row("hardened", attack=attack,
                                  noise="noiseless")
            assert flat_row.disclosed
            assert flat_row.disclosure is not None
            assert (hard_row.disclosure is None
                    or hard_row.disclosure >= 2 * flat_row.disclosure)

        flat_tvla = result.assessment_row("flat", noise="gaussian")
        hard_tvla = result.assessment_row("hardened", noise="gaussian")
        assert flat_tvla.flagged
        assert not hard_tvla.flagged
        assert hard_tvla.peak < flat_tvla.peak
        # Noiseless TVLA still shrinks even if residual d_A keeps it flagged.
        assert (result.assessment_row("hardened", noise="noiseless").peak
                < result.assessment_row("flat", noise="noiseless").peak)

    def test_hardened_rows_identical_across_trace_sources(
            self, hardening_reference):
        """analytic and simulator sources agree design by design.

        On the (leaky) flat design the full row matches, rank included; on
        the hardened design every statistic agrees to float tolerance and
        both sources return the same verdict — with all rail caps equalized
        the per-guess peaks tie at the numerical noise floor, so the exact
        rank order among those ties is not a stable quantity.
        """
        key = hardening_reference["key"]
        campaign = AttackCampaign(
            key, architecture=hardening_reference["architecture"])
        campaign.add_design("flat[analytic]", hardening_reference["flat"])
        campaign.add_design("flat[simulator]", hardening_reference["flat"],
                            source="simulator")
        campaign.add_hardening(
            "hard", hardening_reference["fresh"]("aes_hard_src"),
            base="flat", bound=0.02, seed=5, effort=0.3,
            source=("analytic", "simulator"))
        campaign.add_selection(AesSboxSelection(byte_index=3, bit_index=0))
        result = campaign.run(trace_count=32, seed=9,
                              compute_disclosure=False)

        flat_a = result.row("flat[analytic]")
        flat_s = result.row("flat[simulator]")
        assert flat_a.best_guess == flat_s.best_guess
        assert flat_a.best_peak == pytest.approx(flat_s.best_peak)
        assert flat_a.rank_of_correct == flat_s.rank_of_correct

        analytic = result.row("hard[analytic]")
        simulated = result.row("hard[simulator]")
        assert analytic.best_peak == pytest.approx(simulated.best_peak)
        assert analytic.discrimination == pytest.approx(
            simulated.discrimination)
        # Same verdict: the equalized design discloses under neither source.
        assert analytic.rank_of_correct > 1
        assert simulated.rank_of_correct > 1
        # And the hardened peak collapses versus the leaky flat design's.
        assert analytic.best_peak < 0.1 * flat_a.best_peak

    def test_add_hardening_records_provenance(self, hardening_reference):
        key = hardening_reference["key"]
        campaign = AttackCampaign(
            key, architecture=hardening_reference["architecture"])
        campaign.add_hardening(
            "prov", hardening_reference["fresh"]("aes_hard_prov"),
            base="flat", bound=0.05, seed=5, effort=0.3)
        stored = campaign.hardening_result("prov")
        assert stored.passed
        assert stored.bound == 0.05
        with pytest.raises(ValueError):
            campaign.add_hardening(
                "prov", hardening_reference["fresh"]("aes_dup"),
                base="flat", bound=0.05)
        with pytest.raises(KeyError):
            campaign.hardening_result("unknown")


class TestRepairScalesWithSeeds:
    """The repair loop converges for several placements, not one lucky seed."""

    @pytest.mark.parametrize("seed", [0, 3, 11])
    def test_flat_bank_hardens_across_seeds(self, seed):
        netlist = build_xor_bank(4, f"seed{seed}").netlist
        result = harden_design(netlist, base="flat", bound=0.05, seed=seed,
                               effort=0.3)
        assert result.passed
        assert result.max_dissymmetry <= 0.05


class TestReviewRegressions:
    """Regressions for the pre-merge review findings."""

    def test_bulk_cap_writers_bump_the_cap_version(self):
        from repro.electrical.capacitance import (
            apply_default_routing_caps,
            apply_process_variation,
        )

        netlist = build_xor_bank(2, "bulk").netlist
        version = netlist.cap_version
        apply_default_routing_caps(netlist)
        assert netlist.cap_version > version
        version = netlist.cap_version
        apply_process_variation(netlist, sigma_ff=0.1, seed=1)
        assert netlist.cap_version > version

    def test_add_hardening_rejects_bad_sources_before_running(self):
        key = random_key(16, seed=1)
        campaign = AttackCampaign(key)
        netlist = build_xor_bank(2, "srcs").netlist
        digest = netlist.content_digest()
        with pytest.raises(ValueError):
            campaign.add_hardening("h", netlist, source=("analytic", "spice"))
        with pytest.raises(ValueError):
            campaign.add_hardening("h", netlist, source=())
        # The pipeline never ran: no registration, netlist untouched.
        assert campaign._hardenings == {}
        assert netlist.content_digest() == digest

    def test_caller_floorplan_is_never_mutated(self):
        from repro.pnr import cells_from_netlist, hierarchical_floorplan

        netlist = build_xor_bank(6, "fpcopy").netlist
        floorplan = hierarchical_floorplan(cells_from_netlist(netlist))
        snapshot = {block: region.rect
                    for block, region in floorplan.regions.items()}
        pipeline = hardening_pipeline(base="hierarchical", bound=0.0,
                                      effort=0.3, max_repair_iterations=1,
                                      floorplan=floorplan)
        pipeline.run(netlist, seed=2)
        assert {block: region.rect
                for block, region in floorplan.regions.items()} == snapshot

    def test_fence_resize_skips_blocks_with_fixed_cells(self):
        netlist = build_xor_bank(4, "fixed").netlist
        result = hierarchical_pipeline(effort=0.3).run(netlist, seed=1)
        placement = result.design.placement
        block = sorted(placement.floorplan.regions)[0]
        block_cells = [c for c in placement.cells.values()
                       if c.block == block]
        block_cells[0].fixed = True
        context = PassContext(netlist=netlist, placement=placement)
        from repro.pnr import IncrementalExtractor

        context.extractor = IncrementalExtractor(netlist, placement)
        context.evaluate()
        rect_before = placement.floorplan.regions[block].rect
        position_before = block_cells[0].position
        FenceResizePass(bound=0.0).run(context)
        assert placement.floorplan.regions[block].rect == rect_before
        assert block_cells[0].position == position_before
