"""Tests of the attack suite: CPA, second-order variants, sharded campaigns.

Three layers:

* statistical — on synthetic traces with injected Hamming-weight leakage,
  DPA and CPA must both rank the true key byte first and CPA must disclose
  it with fewer traces (all seeded, fully deterministic);
* numerical — the vectorized Pearson engine against ``np.corrcoef``, the
  incremental prefix sweep against the full re-computation, the DPA kernel
  against the historical ``dpa_attack``;
* orchestration — noise ``apply`` vs ``apply_matrix`` equivalence, sharded
  vs serial :class:`AttackCampaign` table identity, ``TraceSet.subset``
  edge cases.

The module-scoped ``reference_design`` fixture runs the end-to-end
acceptance statement on the placed asynchronous AES: CPA discloses the key
byte in at most half the traces single-bit DPA needs.
"""

import numpy as np
import pytest

from repro.asyncaes import AesArchitecture, AesNetlistGenerator, AesPowerTraceGenerator
from repro.core import (
    AesSboxSelection,
    AttackCampaign,
    CpaKernel,
    DPAError,
    DpaKernel,
    HammingWeightModel,
    HammingWeightSelection,
    SecondOrderKernel,
    SelectionBitModel,
    TraceSet,
    centered_product_matrix,
    cpa_attack,
    dpa_attack,
    leakage_matrix,
    messages_to_disclosure,
    pearson_statistics,
    run_attack,
    second_order_cpa_attack,
    second_order_dpa_attack,
)
from repro.core.cpa import cpa_prefix_peaks
from repro.crypto import SBOX, random_key
from repro.crypto.keys import PlaintextGenerator
from repro.electrical import Waveform
from repro.electrical.noise import (
    BackgroundActivityNoise,
    CompositeNoise,
    GaussianNoise,
    NoNoise,
    NoiseModel,
)
from repro.pnr import run_flat_flow

POPCOUNT = np.asarray([bin(value).count("1") for value in range(256)])
SECRET = 0x3C
SELECTION = AesSboxSelection(byte_index=0, bit_index=0)


def _sbox_bytes(plaintexts):
    return np.asarray([SBOX[p[0] ^ SECRET] for p in plaintexts])


def _hw_leaky_traces(count=400, *, sigma=0.4, scale=0.25, samples=30,
                     leak_at=12, seed=0):
    """Traces whose sample ``leak_at`` leaks the Hamming weight of the
    first-round S-box output of byte 0 under additive Gaussian noise."""
    rng = np.random.default_rng(seed)
    plaintexts = PlaintextGenerator(seed=seed + 1).batch(count)
    matrix = rng.normal(0.0, sigma, (count, samples))
    matrix[:, leak_at] += scale * POPCOUNT[_sbox_bytes(plaintexts)]
    return TraceSet.from_matrix(matrix, plaintexts, 1e-9)


def _masked_traces(count=500, *, sigma=0.15, scale=0.35, seed=3):
    """First-order-masked traces: one sample leaks HW(mask), another
    HW(value ^ mask), and no sample leaks the value itself."""
    rng = np.random.default_rng(seed)
    plaintexts = PlaintextGenerator(seed=seed + 1).batch(count)
    masks = rng.integers(0, 256, count)
    values = _sbox_bytes(plaintexts)
    matrix = rng.normal(0.0, sigma, (count, 8))
    matrix[:, 2] += scale * POPCOUNT[masks]
    matrix[:, 5] += scale * POPCOUNT[values ^ masks]
    return TraceSet.from_matrix(matrix, plaintexts, 1e-9)


# ------------------------------------------------------------- statistical
class TestHammingWeightLeakage:
    @pytest.fixture(scope="class")
    def traces(self):
        return _hw_leaky_traces()

    def test_dpa_ranks_true_key_first(self, traces):
        assert dpa_attack(traces, SELECTION).best_guess == SECRET

    def test_cpa_ranks_true_key_first(self, traces):
        result = cpa_attack(traces, HammingWeightModel(SELECTION))
        assert result.best_guess == SECRET
        # Peaks are Pearson coefficients, so they live in [0, 1].
        assert 0.0 < result.best_peak <= 1.0

    def test_cpa_needs_fewer_traces_than_dpa(self, traces):
        dpa_mtd = messages_to_disclosure(traces, SELECTION, SECRET,
                                         start=16, step=16)
        cpa_mtd = messages_to_disclosure(
            traces, CpaKernel(HammingWeightModel(SELECTION)), SECRET,
            start=16, step=16)
        assert dpa_mtd is not None and cpa_mtd is not None
        # The HW model reads all eight bits where the D function reads one.
        assert cpa_mtd < dpa_mtd
        assert 2 * cpa_mtd <= dpa_mtd

    def test_selection_bit_model_also_discloses(self, traces):
        result = cpa_attack(traces, SELECTION)  # coerced to SelectionBitModel
        assert result.best_guess == SECRET


class TestSecondOrder:
    @pytest.fixture(scope="class")
    def traces(self):
        return _masked_traces()

    def test_first_order_cpa_fails_on_masked_traces(self, traces):
        result = cpa_attack(traces, HammingWeightModel(SELECTION))
        assert result.rank_of(SECRET) > 8

    def test_second_order_cpa_defeats_the_mask(self, traces):
        result = second_order_cpa_attack(traces, HammingWeightModel(SELECTION),
                                         window=8)
        assert result.best_guess == SECRET

    def test_second_order_dpa_defeats_the_mask(self, traces):
        # A single predicted bit captures too little of the HW-linear
        # product leakage; the multi-bit Hamming-weight partition of
        # Section IV is the matching D function for second-order DoM.
        partition = HammingWeightSelection(inner=SELECTION, threshold=4)
        result = second_order_dpa_attack(traces, partition, pairs=[(2, 5)])
        assert result.best_guess == SECRET

    def test_explicit_pairs_restrict_the_combination(self, traces):
        result = second_order_cpa_attack(traces, HammingWeightModel(SELECTION),
                                         pairs=[(2, 5)])
        assert result.best_guess == SECRET

    def test_second_order_disclosure_sweep(self, traces):
        kernel = SecondOrderKernel(CpaKernel(HammingWeightModel(SELECTION)),
                                   pairs=((2, 5),))
        mtd = messages_to_disclosure(traces, kernel, SECRET, start=50, step=50)
        assert mtd is not None

    def test_empty_pair_set_rejected(self, traces):
        with pytest.raises(DPAError):
            centered_product_matrix(traces.matrix(), pairs=[])


# --------------------------------------------------------------- numerical
class TestPearsonEngine:
    def test_matches_corrcoef(self):
        rng = np.random.default_rng(5)
        matrix = rng.normal(size=(50, 7))
        hypothesis = rng.normal(size=(3, 50))
        corr = pearson_statistics(matrix, hypothesis)
        for g in range(3):
            for j in range(7):
                expected = np.corrcoef(hypothesis[g], matrix[:, j])[0, 1]
                assert corr[g, j] == pytest.approx(expected, abs=1e-12)

    def test_constant_columns_yield_zero(self):
        matrix = np.ones((20, 4))
        hypothesis = np.arange(20, dtype=float)[None, :]
        assert np.all(pearson_statistics(matrix, hypothesis) == 0.0)
        constant_model = np.ones((1, 20))
        varying = np.random.default_rng(0).normal(size=(20, 4))
        assert np.all(pearson_statistics(varying, constant_model) == 0.0)

    def test_trace_count_mismatch_rejected(self):
        with pytest.raises(DPAError):
            pearson_statistics(np.zeros((10, 3)), np.zeros((2, 11)))

    def test_prefix_peaks_match_full_recomputation(self):
        traces = _hw_leaky_traces(200, seed=9)
        matrix = traces.matrix()
        hypothesis = leakage_matrix(HammingWeightModel(SELECTION),
                                    traces.plaintexts(), range(256))
        boundaries = [32, 60, 128, 200]
        for count, peaks in cpa_prefix_peaks(matrix, hypothesis, boundaries):
            full = np.abs(pearson_statistics(
                matrix[:count], hypothesis[:, :count])).max(axis=1)
            assert np.allclose(peaks, full, atol=1e-10)

    def test_dpa_kernel_matches_dpa_attack(self):
        traces = _hw_leaky_traces(150, seed=2)
        reference = dpa_attack(traces, SELECTION)
        kernel_result = run_attack(traces, DpaKernel(SELECTION))
        for ref, ker in zip(reference.results, kernel_result.results):
            assert ker.guess == ref.guess
            assert ker.peak == pytest.approx(ref.peak)
            assert ker.peak_time == pytest.approx(ref.peak_time)
        assert kernel_result.best_guess == reference.best_guess

    def test_kernel_disclosure_matches_selection_disclosure(self):
        traces = _hw_leaky_traces(300, seed=4)
        by_selection = messages_to_disclosure(traces, SELECTION, SECRET,
                                              start=16, step=16)
        by_kernel = messages_to_disclosure(traces, DpaKernel(SELECTION),
                                           SECRET, start=16, step=16)
        assert by_kernel == by_selection


# ----------------------------------------------------------- noise models
class _RampNoise(NoiseModel):
    """Custom model implementing only ``apply`` (exercises the fallback)."""

    def apply(self, waveform: Waveform) -> Waveform:
        noisy = waveform.copy()
        noisy.samples = noisy.samples + np.arange(len(noisy.samples))
        return noisy


class TestNoiseEquivalence:
    def _matrix(self, shape=(40, 25), seed=11):
        return np.random.default_rng(seed).normal(size=shape)

    def test_gaussian_apply_matches_apply_matrix(self):
        matrix = self._matrix()
        by_matrix = GaussianNoise(1e-3, seed=21).apply_matrix(matrix, 1e-9)
        per_trace = GaussianNoise(1e-3, seed=21)
        by_rows = np.vstack([
            per_trace.apply(Waveform(row.copy(), 1e-9, 0.0)).samples
            for row in matrix
        ])
        assert np.array_equal(by_matrix, by_rows)

    def test_no_noise_is_the_identity_in_both_paths(self):
        matrix = self._matrix()
        model = NoNoise()
        assert np.array_equal(model.apply_matrix(matrix, 1e-9), matrix)
        row = Waveform(matrix[0].copy(), 1e-9, 0.0)
        assert np.array_equal(model.apply(row).samples, matrix[0])

    def test_composite_gaussians_match(self):
        matrix = self._matrix()
        def make():
            return CompositeNoise((GaussianNoise(1e-3, seed=5),
                                   GaussianNoise(2e-3, seed=6)))
        by_matrix = make().apply_matrix(matrix, 1e-9)
        per_trace = make()
        by_rows = np.vstack([
            per_trace.apply(Waveform(row.copy(), 1e-9, 0.0)).samples
            for row in matrix
        ])
        assert np.array_equal(by_matrix, by_rows)

    def test_fallback_apply_matrix_equals_per_trace_apply(self):
        matrix = self._matrix()
        original = matrix.copy()
        by_matrix = _RampNoise().apply_matrix(matrix, 1e-9)
        expected = matrix + np.arange(matrix.shape[1])[None, :]
        assert np.array_equal(by_matrix, expected)
        # The fallback must not corrupt the caller's matrix.
        assert np.array_equal(matrix, original)

    def test_background_activity_deposits_the_same_charge(self):
        """The batched path draws its pulses in one shot, so per-sample
        equality is impossible — the injected charge must still agree."""
        matrix = np.zeros((200, 100))
        per_trace = BackgroundActivityNoise(0.5, 2e-3, seed=8)
        by_rows = np.vstack([
            per_trace.apply(Waveform(row.copy(), 1e-9, 0.0)).samples
            for row in matrix
        ])
        by_matrix = BackgroundActivityNoise(0.5, 2e-3, seed=8).apply_matrix(
            matrix, 1e-9)
        assert by_matrix.sum() == pytest.approx(by_rows.sum(), rel=0.1)


# ------------------------------------------------------- sharded campaigns
def _synthetic_source(plaintexts, noise):
    plaintexts = [list(p) for p in plaintexts]
    rng = np.random.default_rng(17)
    matrix = rng.normal(0.0, 0.4, (len(plaintexts), 24))
    matrix[:, 7] += 0.3 * POPCOUNT[_sbox_bytes(plaintexts)]
    if noise is not None:
        matrix = noise.apply_matrix(matrix, 1e-9, 0.0)
    return TraceSet.from_matrix(matrix, plaintexts, 1e-9)


class TestShardedCampaign:
    def _campaign(self):
        campaign = AttackCampaign(mtd_start=50, mtd_step=50)
        campaign.add_design("synth-a", trace_source=_synthetic_source)
        campaign.add_design("synth-b", trace_source=_synthetic_source)
        campaign.add_selection(AesSboxSelection(byte_index=0, bit_index=0),
                               correct_guess=SECRET)
        campaign.add_attack("dpa")
        campaign.add_attack("cpa", model="hw")
        campaign.add_noise("noiseless")
        campaign.add_noise("gaussian", lambda: GaussianNoise(0.1, seed=13))
        return campaign

    def test_sharded_table_is_identical_to_serial(self):
        serial = self._campaign().run(trace_count=150, seed=3)
        sharded = self._campaign().run(trace_count=150, seed=3, workers=4)
        assert sharded.table() == serial.table()
        for left, right in zip(serial.rows, sharded.rows):
            assert left == right

    def test_sharded_keep_results_crosses_the_pool(self):
        sharded = self._campaign().run(trace_count=120, seed=3, workers=2,
                                       compute_disclosure=False,
                                       keep_results=True)
        row = sharded.row("synth-a", attack="cpa-hw", noise="noiseless")
        assert row.result is not None
        assert row.result.best_guess == row.best_guess

    def test_attack_grid_distinguishes_dpa_from_cpa(self):
        result = self._campaign().run(trace_count=150, seed=3,
                                      compute_disclosure=True)
        dpa_row = result.row("synth-a", attack="dpa", noise="noiseless")
        cpa_row = result.row("synth-a", attack="cpa-hw", noise="noiseless")
        assert dpa_row.rank_of_correct == 1
        assert cpa_row.rank_of_correct == 1
        assert cpa_row.disclosure <= dpa_row.disclosure

    def test_invalid_workers_rejected(self):
        with pytest.raises(ValueError):
            self._campaign().run(trace_count=64, workers=0)

    def test_unknown_attack_kind_rejected(self):
        campaign = AttackCampaign()
        with pytest.raises(ValueError):
            campaign.add_attack("template")
        with pytest.raises(ValueError):
            campaign.add_attack(lambda selection: DpaKernel(selection))

    def test_inapplicable_attack_options_rejected(self):
        campaign = AttackCampaign()
        with pytest.raises(ValueError):
            campaign.add_attack("cpa", window=8)  # second-order-only option
        with pytest.raises(ValueError):
            campaign.add_attack("dpa", model="hw")  # CPA-only option
        with pytest.raises(ValueError):
            campaign.add_attack("dpa2", model="hw")

    def test_run_does_not_mutate_the_campaign_grid(self):
        campaign = AttackCampaign(mtd_start=50, mtd_step=50)
        campaign.add_design("synth", trace_source=_synthetic_source)
        campaign.add_selection(AesSboxSelection(byte_index=0, bit_index=0),
                               correct_guess=SECRET)
        first = campaign.run(trace_count=64, compute_disclosure=False)
        assert [row.attack for row in first.rows] == ["dpa"]
        # Registering a CPA attack after a defaulted run must not leave the
        # implicit DPA (or noise level) behind in the grid.
        campaign.add_attack("cpa", model="hw")
        second = campaign.run(trace_count=64, compute_disclosure=False)
        assert [row.attack for row in second.rows] == ["cpa-hw"]


# --------------------------------------------------------- subset edge cases
class TestTraceSetSubset:
    def _traces(self, count=10, *, build_matrix):
        traces = _hw_leaky_traces(count, seed=6)
        if build_matrix:
            traces.matrix()
        else:
            traces = TraceSet(list(traces))
        return traces

    @pytest.mark.parametrize("build_matrix", [True, False],
                             ids=["matrix-built", "lazy"])
    def test_negative_count_raises(self, build_matrix):
        traces = self._traces(build_matrix=build_matrix)
        with pytest.raises(DPAError):
            traces.subset(-1)

    @pytest.mark.parametrize("build_matrix", [True, False],
                             ids=["matrix-built", "lazy"])
    def test_zero_count_is_the_empty_set(self, build_matrix):
        traces = self._traces(build_matrix=build_matrix)
        assert len(traces.subset(0)) == 0

    @pytest.mark.parametrize("build_matrix", [True, False],
                             ids=["matrix-built", "lazy"])
    def test_oversized_count_clamps(self, build_matrix):
        traces = self._traces(build_matrix=build_matrix)
        subset = traces.subset(10_000)
        assert len(subset) == len(traces)
        assert subset.plaintexts() == traces.plaintexts()

    def test_subset_stays_zero_copy_when_matrix_is_built(self):
        traces = self._traces(build_matrix=True)
        subset = traces.subset(4)
        assert np.shares_memory(subset.matrix(), traces.matrix())

    def test_empty_set_subset(self):
        assert len(TraceSet().subset(0)) == 0
        assert len(TraceSet().subset(5)) == 0
        with pytest.raises(DPAError):
            TraceSet().subset(-3)


# --------------------------------------- reference-design acceptance test
@pytest.fixture(scope="module")
def reference_design():
    """The flat-placed asynchronous AES of the end-to-end experiments."""
    key = random_key(16, seed=7)
    architecture = AesArchitecture(word_width=32, detail=0.15)
    netlist = AesNetlistGenerator(architecture, name="aes_attack_suite").build()
    # Seed chosen to give an attackable flat reference (placement seeds
    # differ in how leaky the first-round channels come out; the vectorized
    # placer's shorter nets made the old seed's design too balanced to
    # disclose within the 600-trace budget).
    run_flat_flow(netlist, seed=3, effort=0.8)
    generator = AesPowerTraceGenerator(netlist, key, architecture=architecture)
    traces = generator.trace_batch(PlaintextGenerator(seed=8).batch(600))
    best_bit = max(range(8), key=lambda j: generator.channel_dissymmetry(
        "bytesub0_to_sr0", 24 + j))
    selection = AesSboxSelection(byte_index=0, bit_index=best_bit)
    return key, traces, selection


class TestReferenceDesignAcceptance:
    def test_cpa_halves_the_trace_budget(self, reference_design):
        key, traces, selection = reference_design
        dpa_mtd = messages_to_disclosure(traces, selection, key[0],
                                         start=20, step=20)
        cpa_mtd = messages_to_disclosure(
            traces, CpaKernel(SelectionBitModel(selection)), key[0],
            start=20, step=20)
        assert dpa_mtd is not None and cpa_mtd is not None
        assert 2 * cpa_mtd <= dpa_mtd

    def test_cpa_ranks_the_key_first_on_the_full_set(self, reference_design):
        key, traces, selection = reference_design
        result = cpa_attack(traces, selection)
        assert result.best_guess == key[0]
