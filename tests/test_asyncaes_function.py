"""Tests of the asynchronous AES functional models (controller, key path,
data path, processor) against the software reference."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asyncaes import (
    AsyncAesProcessor,
    CipherDataPath,
    ControllerError,
    DatapathError,
    KeyPathError,
    KeySchedulePath,
    ProcessorError,
    RoundController,
    RoundStep,
    block_to_words,
    bytes_to_word,
    rot_word,
    sub_word,
    word_to_bytes,
    words_to_block,
)
from repro.crypto import AES, key_expansion

KEY = [0x2B, 0x7E, 0x15, 0x16, 0x28, 0xAE, 0xD2, 0xA6,
       0xAB, 0xF7, 0x15, 0x88, 0x09, 0xCF, 0x4F, 0x3C]
PLAINTEXT = [0x32, 0x43, 0xF6, 0xA8, 0x88, 0x5A, 0x30, 0x8D,
             0x31, 0x31, 0x98, 0xA2, 0xE0, 0x37, 0x07, 0x34]


class TestRoundController:
    def test_sequence_length(self):
        controller = RoundController()
        tokens = controller.run()
        assert len(tokens) == controller.token_count() == 42

    def test_sequence_structure(self):
        tokens = RoundController().run()
        assert tokens[0].step is RoundStep.LOAD
        assert tokens[1].step is RoundStep.ADD_KEY0
        assert tokens[-1].step is RoundStep.OUTPUT
        mixcolumns = [t for t in tokens if t.step is RoundStep.MIX_COLUMNS]
        assert len(mixcolumns) == 9  # the last round skips MixColumns

    def test_steps_of_round(self):
        controller = RoundController()
        assert RoundStep.MIX_COLUMNS in controller.steps_of_round(5)
        assert RoundStep.MIX_COLUMNS not in controller.steps_of_round(10)
        with pytest.raises(ControllerError):
            controller.steps_of_round(11)

    def test_validate_sequence(self):
        controller = RoundController()
        tokens = controller.run()
        assert controller.validate_sequence(tokens) == []
        assert controller.validate_sequence(tokens[:-1])
        swapped = [tokens[1], tokens[0]] + tokens[2:]
        assert controller.validate_sequence(swapped)

    def test_invalid_round_count(self):
        with pytest.raises(ControllerError):
            RoundController(rounds=0)


class TestWordHelpers:
    def test_word_byte_roundtrip(self):
        assert word_to_bytes(bytes_to_word([0xDE, 0xAD, 0xBE, 0xEF])) == \
            [0xDE, 0xAD, 0xBE, 0xEF]

    def test_block_word_roundtrip(self):
        block = list(range(16))
        assert words_to_block(block_to_words(block)) == block

    def test_rot_and_sub_word(self):
        assert rot_word(0x01020304) == 0x02030401
        assert sub_word(0x00000000) == 0x63636363

    def test_invalid_sizes(self):
        with pytest.raises(KeyPathError):
            bytes_to_word([1, 2, 3])
        with pytest.raises(DatapathError):
            block_to_words([0] * 15)


class TestKeySchedulePath:
    def test_matches_software_key_expansion(self):
        path = KeySchedulePath(KEY)
        assert path.round_keys_bytes() == key_expansion(KEY)

    def test_run_records_transfers(self):
        path = KeySchedulePath(KEY)
        round_words, end_slot = path.run()
        assert len(round_words) == 11
        assert end_slot > 0
        assert path.transfers_on("xorkey_to_dup")
        assert path.transfers_on("ksbox_to_demux12")

    def test_subkey_transfers_follow_core_slots(self):
        path = KeySchedulePath(KEY)
        round_words, _ = path.run()
        transfers = path.subkey_transfers(round_words, {0: 10, 1: 50, 10: 400})
        buses = {t.bus for t in transfers}
        assert buses == {"key0_to_addkey0", "subkey_to_ark", "subkey_to_alk"}
        assert len(transfers) == 12

    def test_rejects_non_128_bit_keys(self):
        with pytest.raises(KeyPathError):
            KeySchedulePath(list(range(24)))

    @given(st.lists(st.integers(0, 255), min_size=16, max_size=16))
    @settings(max_examples=15, deadline=None)
    def test_key_expansion_property(self, key):
        assert KeySchedulePath(key).round_keys_bytes() == key_expansion(key)


class TestCipherDataPath:
    def test_ciphertext_matches_reference(self):
        run = CipherDataPath(KEY).encrypt(PLAINTEXT)
        assert run.ciphertext == AES(KEY).encrypt_block(PLAINTEXT)

    def test_addkey0_transfer_carries_pt_xor_key(self):
        """The DPA-relevant transfer: plaintext XOR key crosses addkey0_to_mux."""
        run = CipherDataPath(KEY).encrypt(PLAINTEXT)
        transfers = sorted(run.transfers_on("addkey0_to_mux"), key=lambda t: t.slot)
        expected = block_to_words([p ^ k for p, k in zip(PLAINTEXT, KEY)])
        assert [t.word for t in transfers[:4]] == expected

    def test_output_transfers_carry_ciphertext(self):
        run = CipherDataPath(KEY).encrypt(PLAINTEXT)
        transfers = sorted(run.transfers_on("data_out"), key=lambda t: t.slot)
        assert [t.word for t in transfers] == block_to_words(run.ciphertext)

    def test_every_data_channel_sees_traffic(self):
        run = CipherDataPath(KEY).encrypt(PLAINTEXT)
        used = {t.bus for t in run.transfers}
        for bus in ("data_in", "mux41_to_addkey0", "addkey0_to_mux", "mux_to_dmux",
                    "c0_to_bytesub0", "bytesub3_to_sr3", "sr1_to_muxmix",
                    "muxmix_to_mixcol", "mixcol_to_ark", "roundloop_to_mux",
                    "muxmix_to_alk", "alk_to_dmuxout", "data_out"):
            assert bus in used, bus

    def test_round_key_slots_cover_all_rounds(self):
        run = CipherDataPath(KEY).encrypt(PLAINTEXT)
        assert set(run.round_key_slots) == set(range(11))
        slots = [run.round_key_slots[r] for r in range(11)]
        assert slots == sorted(slots)

    def test_slots_strictly_positive_and_bounded(self):
        run = CipherDataPath(KEY).encrypt(PLAINTEXT)
        assert all(0 <= t.slot < run.total_slots for t in run.transfers)

    def test_invalid_plaintext(self):
        with pytest.raises(DatapathError):
            CipherDataPath(KEY).encrypt([0] * 15)

    @given(st.lists(st.integers(0, 255), min_size=16, max_size=16),
           st.lists(st.integers(0, 255), min_size=16, max_size=16))
    @settings(max_examples=10, deadline=None)
    def test_equivalence_property(self, plaintext, key):
        """The architectural data flow always matches the software AES."""
        run = CipherDataPath(key).encrypt(plaintext)
        assert run.ciphertext == AES(key).encrypt_block(plaintext)


class TestProcessor:
    def test_encrypt_checks_reference(self):
        processor = AsyncAesProcessor(KEY)
        assert processor.encrypt(PLAINTEXT) == AES(KEY).encrypt_block(PLAINTEXT)

    def test_round_keys_exposed(self):
        processor = AsyncAesProcessor(KEY)
        assert processor.round_keys() == key_expansion(KEY)

    def test_rejects_wrong_key_size(self):
        with pytest.raises(ProcessorError):
            AsyncAesProcessor(list(range(24)))

    def test_first_round_target_word(self):
        datapath = CipherDataPath(KEY)
        word = datapath.first_round_target_word(PLAINTEXT, column=0)
        expected = block_to_words([p ^ k for p, k in zip(PLAINTEXT, KEY)])[0]
        assert word == expected
