"""Equivalence suite of the compiled simulation engine.

Three contracts are pinned here:

* the int-coded truth tables reproduce every library cell's behavioural
  closure exactly;
* the compiled event :class:`Simulator` is value- and time-identical to the
  scalar :class:`ReferenceSimulator` loop across the QDI block library
  (gates, handshake cycles, the validate fixtures);
* the levelized :func:`simulate_batch` sweep settles to exactly the values
  of the per-vector event loop.
"""

import random

import numpy as np
import pytest

from repro.circuits import (
    DelayModel,
    EngineError,
    Logic,
    Netlist,
    ReferenceSimulator,
    Simulator,
    build_dual_rail_and2,
    build_dual_rail_or2,
    build_dual_rail_xor,
    build_half_buffer,
    build_xor_bank,
    compile_netlist,
    DEFAULT_LIBRARY,
    settle_combinational,
    simulate_batch,
)
from repro.circuits.handshake import (
    FourPhaseConsumer,
    FourPhaseProducer,
    ResetPulse,
)


def _transition_tuples(trace):
    return sorted(
        (t.net, t.time, int(t.value), t.kind.value, t.cause, t.level)
        for t in trace.transitions
    )


def _chain_netlist():
    netlist = Netlist("chain")
    netlist.add_input("a")
    netlist.add_output("y")
    netlist.add_instance("i1", "INV", {"A": "a", "Z": "n1"})
    netlist.add_instance("i2", "INV", {"A": "n1", "Z": "y"})
    return netlist


class TestTruthTables:
    def test_every_library_cell_matches_its_closure(self):
        for cell in DEFAULT_LIBRARY:
            table = cell.truth_table()
            n = len(cell.inputs)
            assert len(table) == 1 << (n + 1)
            for packed in range(1 << n):
                values = {pin: Logic((packed >> i) & 1)
                          for i, pin in enumerate(cell.inputs)}
                for prev in (Logic.LOW, Logic.HIGH):
                    expected = cell.compute(values, prev)
                    assert table[(packed << 1) | int(prev)] == int(expected), \
                        f"{cell.name} packed={packed:b} prev={prev}"

    def test_muller_table_is_state_holding(self):
        cell = DEFAULT_LIBRARY.get("MULLER2")
        table = cell.truth_table()
        # Disagreeing inputs keep the previous output.
        for packed in (0b01, 0b10):
            assert table[(packed << 1) | 0] == 0
            assert table[(packed << 1) | 1] == 1


class TestCompiledNetlistCache:
    def test_compile_is_cached_until_structure_changes(self):
        netlist = _chain_netlist()
        first = compile_netlist(netlist)
        assert compile_netlist(netlist) is first
        netlist.add_instance("i3", "BUF", {"A": "y", "Z": "y2"})
        second = compile_netlist(netlist)
        assert second is not first
        assert second.instance_count == first.instance_count + 1

    def test_routing_cap_change_does_not_recompile(self):
        netlist = _chain_netlist()
        first = compile_netlist(netlist)
        netlist.set_routing_cap("n1", 42.0)
        assert compile_netlist(netlist) is first


def _run_two_operand(sim_class, block, pairs, env_delay=20e-12):
    sim = sim_class(block.netlist)
    sim.set_levels(block.level_of_instance)
    producer_a = FourPhaseProducer(block.inputs[0], block.ack_out,
                                   [p[0] for p in pairs],
                                   env_delay=env_delay, start_time=200e-12)
    producer_b = FourPhaseProducer(block.inputs[1], block.ack_out,
                                   [p[1] for p in pairs],
                                   env_delay=env_delay, start_time=200e-12)
    consumer = FourPhaseConsumer(block.outputs[0], ack_net=block.ack_in,
                                 ack_active_high=False, env_delay=env_delay)
    for process in (producer_a, producer_b, consumer):
        sim.add_process(process)
    if block.reset is not None:
        sim.add_process(ResetPulse(block.reset, duration=100e-12))
    trace = sim.settle()
    values = {net.name: sim.value(net.name) for net in block.netlist.nets()}
    return trace, consumer.received, sim.time, values


TWO_OPERAND_BUILDERS = [
    ("xor", build_dual_rail_xor),
    ("and2", build_dual_rail_and2),
    ("or2", build_dual_rail_or2),
]
ALL_PAIRS = [(0, 0), (0, 1), (1, 0), (1, 1)]


class TestEventEngineEquivalence:
    """Compiled Simulator vs the scalar ReferenceSimulator oracle."""

    @pytest.mark.parametrize("name,builder", TWO_OPERAND_BUILDERS)
    def test_handshake_blocks_are_identical(self, name, builder):
        compiled = _run_two_operand(Simulator, builder(name), ALL_PAIRS)
        reference = _run_two_operand(ReferenceSimulator, builder(name), ALL_PAIRS)
        assert _transition_tuples(compiled[0]) == _transition_tuples(reference[0])
        assert compiled[1] == reference[1]
        assert compiled[2] == reference[2]
        assert compiled[3] == reference[3]

    @pytest.mark.parametrize("name,builder", TWO_OPERAND_BUILDERS)
    def test_unbalanced_caps_keep_identity(self, name, builder):
        def build():
            block = builder(name)
            block.set_level_cap(3, 1, 24.0)
            return block
        compiled = _run_two_operand(Simulator, build(), ALL_PAIRS)
        reference = _run_two_operand(ReferenceSimulator, build(), ALL_PAIRS)
        assert _transition_tuples(compiled[0]) == _transition_tuples(reference[0])
        assert compiled[2] == reference[2]

    @pytest.mark.parametrize("radix", [2, 3, 4])
    def test_half_buffer_identity(self, radix):
        def run(sim_class):
            block = build_half_buffer("hb", radix=radix)
            sim = sim_class(block.netlist)
            producer = FourPhaseProducer(block.inputs[0], block.ack_out,
                                         [radix - 1, 0], start_time=200e-12)
            consumer = FourPhaseConsumer(block.outputs[0], ack_net=block.ack_in,
                                         ack_active_high=False)
            sim.add_process(producer)
            sim.add_process(consumer)
            sim.add_process(ResetPulse(block.reset, duration=100e-12))
            trace = sim.settle()
            return _transition_tuples(trace), consumer.received, sim.time
        assert run(Simulator) == run(ReferenceSimulator)

    def test_xor_bank_wide_fanout_identity(self):
        """Word-wide banks exercise the vectorized same-timestamp sweep."""
        def run(sim_class):
            bank = build_xor_bank(4, "bk")
            sim = sim_class(bank.netlist)
            for bit, block in enumerate(bank.bits):
                sim.add_process(FourPhaseProducer(
                    block.inputs[0], block.ack_out, [(0b1010 >> bit) & 1],
                    start_time=200e-12, name=f"pa{bit}"))
                sim.add_process(FourPhaseProducer(
                    block.inputs[1], block.ack_out, [(0b0110 >> bit) & 1],
                    start_time=200e-12, name=f"pb{bit}"))
                sim.add_process(FourPhaseConsumer(
                    block.outputs[0], ack_net=block.ack_in,
                    ack_active_high=False, name=f"c{bit}"))
                sim.add_process(ResetPulse(block.reset, name=f"r{bit}"))
            trace = sim.settle()
            values = {net.name: int(sim.value(net.name))
                      for net in bank.netlist.nets()}
            return _transition_tuples(trace), values, sim.time
        assert run(Simulator) == run(ReferenceSimulator)

    def test_run_until_identity(self):
        def run(sim_class):
            netlist = _chain_netlist()
            sim = sim_class(netlist)
            sim.drive_input("a", Logic.HIGH, time=1e-9)
            sim.run(until=0.5e-9)
            mid = (sim.time, int(sim.value("a")), sim.pending_events())
            sim.settle()
            return mid, _transition_tuples(sim.trace), sim.time
        assert run(Simulator) == run(ReferenceSimulator)

    def test_custom_delay_model_identity(self):
        model = DelayModel(intrinsic_s=5e-12, resistance_scale=2.0)
        def run(sim_class):
            block = build_dual_rail_xor("x")
            sim = sim_class(block.netlist, delay_model=model)
            sim.drive_input(block.inputs[0].rails[1], Logic.HIGH)
            sim.drive_input(block.inputs[1].rails[0], Logic.HIGH)
            sim.settle()
            return _transition_tuples(sim.trace), sim.time
        assert run(Simulator) == run(ReferenceSimulator)


class TestSimulateBatch:
    @pytest.mark.parametrize("name,builder", TWO_OPERAND_BUILDERS)
    def test_matches_settle_combinational_exhaustively(self, name, builder):
        block = builder(name)
        netlist = block.netlist
        rails = [*block.inputs[0].rails, *block.inputs[1].rails]
        stimuli = []
        for packed in range(1 << len(rails)):
            stimuli.append({rail: (packed >> i) & 1
                            for i, rail in enumerate(rails)})
        result = simulate_batch(netlist, stimuli)
        assert len(result) == len(stimuli)
        for index in (0, 3, 7, len(stimuli) - 1):
            reference = settle_combinational(
                netlist, {k: Logic(v) for k, v in stimuli[index].items()})
            assert result.row(index) == reference

    def test_matches_event_loop_on_xor_bank_random_stimuli(self):
        bank = build_xor_bank(3, "bk")
        rails = [rail for block in bank.bits
                 for rail in (*block.inputs[0].rails, *block.inputs[1].rails)]
        rng = random.Random(5)
        stimuli = [{rail: rng.randint(0, 1) for rail in rails}
                   for _ in range(40)]
        result = simulate_batch(bank.netlist, stimuli)
        for index in range(0, len(stimuli), 7):
            reference = settle_combinational(
                bank.netlist,
                {k: Logic(v) for k, v in stimuli[index].items()})
            assert result.row(index) == reference

    def test_combinational_startup_matches(self):
        """INV chains must produce their true outputs from the all-low state."""
        netlist = _chain_netlist()
        result = simulate_batch(netlist, [{}, {"a": 1}])
        assert result.value(0, "n1") is Logic.HIGH
        assert result.value(0, "y") is Logic.LOW
        assert result.value(1, "n1") is Logic.LOW
        assert result.value(1, "y") is Logic.HIGH
        assert result.row(1) == settle_combinational(netlist, {"a": Logic.HIGH})

    def test_column_accessor(self):
        netlist = _chain_netlist()
        result = simulate_batch(netlist, [{"a": 0}, {"a": 1}, {"a": 0}])
        assert list(result.column("y")) == [0, 1, 0]

    def test_unknown_net_rejected(self):
        with pytest.raises(EngineError):
            simulate_batch(_chain_netlist(), [{"missing": 1}])

    def test_unknown_net_lookup_rejected(self):
        result = simulate_batch(_chain_netlist(), [{"a": 1}])
        with pytest.raises(EngineError):
            result.value(0, "missing")

    def test_oscillating_batch_raises(self):
        netlist = Netlist("ring")
        netlist.add_instance("i1", "INV", {"A": "b", "Z": "a"})
        netlist.add_instance("i2", "BUF", {"A": "a", "Z": "b"})
        with pytest.raises(EngineError):
            simulate_batch(netlist, [{}])

    def test_empty_batch(self):
        result = simulate_batch(_chain_netlist(), [])
        assert len(result) == 0

    def test_accepts_logic_and_int_values(self):
        netlist = _chain_netlist()
        a = simulate_batch(netlist, [{"a": Logic.HIGH}])
        b = simulate_batch(netlist, [{"a": 1}])
        assert np.array_equal(a.values, b.values)
