"""Tests of the DPA machinery (equations (7)-(9)) on synthetic traces."""

import numpy as np
import pytest

from repro.core import (
    AesSboxSelection,
    AesAddRoundKeySelection,
    DPAError,
    TraceSet,
    dpa_attack,
    dpa_bias,
    messages_to_disclosure,
    partition_by_values,
    partition_traces,
    selection_bits,
)
from repro.crypto import SBOX
from repro.crypto.keys import PlaintextGenerator, bit_of
from repro.electrical import Waveform

SECRET_KEY_BYTE = 0x3C
LEAK_SAMPLE = 25
TRACE_LENGTH = 60


def _leaky_trace(plaintext, *, leak_delta, noise_sigma, rng, selection_value):
    """A synthetic trace leaking ``selection_value`` at LEAK_SAMPLE."""
    samples = rng.normal(0.0, noise_sigma, TRACE_LENGTH)
    samples[LEAK_SAMPLE] += leak_delta * selection_value
    return Waveform(samples, 1e-9, 0.0)


def _build_trace_set(count, *, leak_delta=1e-4, noise_sigma=1e-5, seed=0,
                     bit_index=0):
    """Traces leaking the first-round SubBytes output bit of byte 0."""
    rng = np.random.default_rng(seed)
    plaintexts = PlaintextGenerator(seed=seed + 1).batch(count)
    traces = TraceSet()
    for plaintext in plaintexts:
        value = bit_of(SBOX[plaintext[0] ^ SECRET_KEY_BYTE], bit_index)
        traces.add(_leaky_trace(plaintext, leak_delta=leak_delta,
                                noise_sigma=noise_sigma, rng=rng,
                                selection_value=value), plaintext)
    return traces


class TestTraceSet:
    def test_add_and_len(self):
        traces = _build_trace_set(10)
        assert len(traces) == 10
        assert traces[0].waveform.dt == pytest.approx(1e-9)

    def test_matrix_shape(self):
        traces = _build_trace_set(8)
        assert traces.matrix().shape == (8, TRACE_LENGTH)

    def test_empty_set_rejected(self):
        with pytest.raises(DPAError):
            TraceSet().matrix()
        with pytest.raises(DPAError):
            dpa_attack(TraceSet(), AesSboxSelection())

    def test_subset(self):
        traces = _build_trace_set(10)
        assert len(traces.subset(4)) == 4


class TestPartitioning:
    def test_equation_7_partition_sizes(self):
        traces = _build_trace_set(64)
        selection = AesSboxSelection(byte_index=0, bit_index=0)
        set0, set1 = partition_traces(traces, selection, SECRET_KEY_BYTE)
        assert len(set0) + len(set1) == 64
        assert len(set0) > 0 and len(set1) > 0

    def test_selection_bits_match_partition(self):
        traces = _build_trace_set(32)
        selection = AesSboxSelection(byte_index=0, bit_index=0)
        bits = selection_bits(traces, selection, SECRET_KEY_BYTE)
        set0, set1 = partition_traces(traces, selection, SECRET_KEY_BYTE)
        assert len(set1) == int(bits.sum())
        assert len(set0) == len(traces) - int(bits.sum())

    def test_partition_by_values(self):
        traces = _build_trace_set(16)
        bits = [i % 2 for i in range(16)]
        set0, set1 = partition_by_values(traces, bits)
        assert len(set0) == len(set1) == 8
        with pytest.raises(DPAError):
            partition_by_values(traces, [0, 1])


class TestBiasSignal:
    def test_equation_9_peak_at_leak_sample(self):
        traces = _build_trace_set(256, noise_sigma=1e-6)
        selection = AesSboxSelection(byte_index=0, bit_index=0)
        bias = dpa_bias(traces, selection, SECRET_KEY_BYTE)
        peak_index = int(np.argmax(np.abs(bias.samples)))
        assert peak_index == LEAK_SAMPLE
        assert abs(bias.samples[LEAK_SAMPLE]) == pytest.approx(1e-4, rel=0.1)

    def test_wrong_guess_bias_is_small(self):
        traces = _build_trace_set(256, noise_sigma=1e-6)
        selection = AesSboxSelection(byte_index=0, bit_index=0)
        wrong = dpa_bias(traces, selection, SECRET_KEY_BYTE ^ 0x5A)
        correct = dpa_bias(traces, selection, SECRET_KEY_BYTE)
        assert wrong.max_abs() < 0.5 * correct.max_abs()

    def test_single_sided_partition_gives_zero_bias(self):
        """A selection that never splits the traces yields a null bias."""
        traces = TraceSet()
        rng = np.random.default_rng(0)
        for _ in range(8):
            plaintext = [0] * 16
            traces.add(_leaky_trace(plaintext, leak_delta=0, noise_sigma=1e-6,
                                    rng=rng, selection_value=0), plaintext)
        selection = AesAddRoundKeySelection(byte_index=0, bit_index=0)
        bias = dpa_bias(traces, selection, 0x00)
        assert bias.max_abs() == pytest.approx(0.0)


class TestAttack:
    def test_correct_key_ranks_first(self):
        traces = _build_trace_set(300, noise_sigma=2e-5)
        selection = AesSboxSelection(byte_index=0, bit_index=0)
        result = dpa_attack(traces, selection)
        assert result.best_guess == SECRET_KEY_BYTE
        assert result.rank_of(SECRET_KEY_BYTE) == 1
        assert result.discrimination_ratio(SECRET_KEY_BYTE) > 1.0

    def test_attack_fails_without_leak(self):
        traces = _build_trace_set(200, leak_delta=0.0, noise_sigma=1e-5)
        selection = AesSboxSelection(byte_index=0, bit_index=0)
        result = dpa_attack(traces, selection)
        assert result.discrimination_ratio(SECRET_KEY_BYTE) < 2.0

    def test_keep_bias_stores_waveforms(self):
        traces = _build_trace_set(64)
        selection = AesSboxSelection(byte_index=0, bit_index=0)
        result = dpa_attack(traces, selection, guesses=[SECRET_KEY_BYTE, 0x00],
                            keep_bias=True)
        assert result.result_for(SECRET_KEY_BYTE).bias is not None

    def test_unknown_guess_raises(self):
        traces = _build_trace_set(16)
        selection = AesSboxSelection(byte_index=0, bit_index=0)
        result = dpa_attack(traces, selection, guesses=[1, 2, 3])
        with pytest.raises(DPAError):
            result.rank_of(200)

    def test_ranking_sorted_by_peak(self):
        traces = _build_trace_set(128)
        selection = AesSboxSelection(byte_index=0, bit_index=0)
        result = dpa_attack(traces, selection, guesses=range(0, 256, 16))
        ranking = result.ranking()
        peaks = [r.peak for r in ranking]
        assert peaks == sorted(peaks, reverse=True)


class TestMessagesToDisclosure:
    def test_disclosure_found_with_enough_traces(self):
        traces = _build_trace_set(400, noise_sigma=2e-5)
        selection = AesSboxSelection(byte_index=0, bit_index=0)
        disclosure = messages_to_disclosure(traces, selection, SECRET_KEY_BYTE,
                                            start=64, step=64)
        assert disclosure is not None
        assert disclosure <= 400

    def test_no_disclosure_without_leak(self):
        traces = _build_trace_set(128, leak_delta=0.0)
        selection = AesSboxSelection(byte_index=0, bit_index=0)
        disclosure = messages_to_disclosure(traces, selection, SECRET_KEY_BYTE,
                                            start=64, step=64)
        assert disclosure is None

    def test_invalid_start(self):
        traces = _build_trace_set(16)
        with pytest.raises(DPAError):
            messages_to_disclosure(traces, AesSboxSelection(), 0, start=1)

    def test_stronger_leak_discloses_with_fewer_traces(self):
        selection = AesSboxSelection(byte_index=0, bit_index=0)
        weak = _build_trace_set(400, leak_delta=4e-5, noise_sigma=4e-5, seed=5)
        strong = _build_trace_set(400, leak_delta=4e-4, noise_sigma=4e-5, seed=5)
        weak_n = messages_to_disclosure(weak, selection, SECRET_KEY_BYTE,
                                        start=32, step=32)
        strong_n = messages_to_disclosure(strong, selection, SECRET_KEY_BYTE,
                                          start=32, step=32)
        assert strong_n is not None
        if weak_n is not None:
            assert strong_n <= weak_n
