"""Integration test of the full gate-level pipeline on the dual-rail XOR:

netlist -> graph analysis -> event simulation -> current synthesis ->
DPA set averaging -> electrical signature, with and without capacitance
imbalance (the Section III-V story of the paper end to end).
"""

import pytest

from repro.circuits import build_dual_rail_xor, simulate_two_operand_block
from repro.core import (
    FormalCurrentModel,
    TraceSet,
    dpa_bias,
    formal_signature,
    signature_from_traces,
)
from repro.core.selection import AesAddRoundKeySelection
from repro.electrical import apply_process_variation, per_computation_currents
from repro.graph import build_circuit_graph, compute_levels, switching_profile

ALL_PAIRS = [(0, 0), (1, 1), (0, 1), (1, 0)]


def _xor_trace_set(block):
    """One current trace per (a, b) operand pair.

    Byte 0 of the pseudo plaintext carries the XOR *output* value, so that the
    AES AddRoundKey selection function with a zero key guess partitions the
    traces by the produced rail — the known-value leakage assessment of
    Section IV.
    """
    waveforms = per_computation_currents(block, ALL_PAIRS)
    traces = TraceSet()
    for (a, b), waveform in zip(ALL_PAIRS, waveforms):
        traces.add(waveform, [a ^ b] + [0] * 15, operand_a=a, operand_b=b)
    return traces


class TestXorPipeline:
    def test_balanced_pipeline_has_no_leak(self):
        xor = build_dual_rail_xor("x")
        graph = build_circuit_graph(xor.netlist)
        levels = compute_levels(graph)

        # Logical balance: constant switching profile.
        profiles = [switching_profile(simulate_two_operand_block(xor, [pair]).trace,
                                      levels) for pair in ALL_PAIRS]
        assert all(p.nt == 4 for p in profiles)

        # Electrical balance: null signature between the two DPA sets.
        waves = per_computation_currents(xor, ALL_PAIRS)
        signature = signature_from_traces(waves[:2], waves[2:])
        assert signature.max_abs() == pytest.approx(0.0)

    def test_routing_imbalance_creates_measurable_bias(self):
        """The central claim: routing capacitance mismatch, not logic, leaks."""
        xor = build_dual_rail_xor("x")
        xor.set_level_cap(3, 1, 24.0)   # unbalance the rail-0 output net

        waves = per_computation_currents(xor, ALL_PAIRS)
        simulated = signature_from_traces(waves[:2], waves[2:])
        assert simulated.max_abs() > 0

        # The formal model predicts a non-null signature as well.
        formal = formal_signature(FormalCurrentModel.from_block(xor))
        assert formal.max_abs() > 0

    def test_dpa_partitioning_on_xor_traces(self):
        """Partitioning the XOR traces by the output bit reveals the imbalance
        through equation (9)."""
        xor = build_dual_rail_xor("x")
        xor.set_level_cap(3, 1, 24.0)
        traces = _xor_trace_set(xor)
        # Selection: output bit = a XOR b; with b stored as metadata and key
        # guess 0 over byte 0, the D function reduces to bit0(a) — partitioning
        # by the value of a is enough to expose the rail-capacitance mismatch
        # because a = 0 computations exercise different minterm gates.
        selection = AesAddRoundKeySelection(byte_index=0, bit_index=0)
        bias = dpa_bias(traces, selection, key_guess=0)
        balanced = build_dual_rail_xor("y")
        balanced_bias = dpa_bias(_xor_trace_set(balanced), selection, key_guess=0)
        assert bias.max_abs() > balanced_bias.max_abs()

    def test_process_variation_gives_residual_peaks(self):
        """Fig. 6: even nominally equal load capacitances leave small residual
        peaks once intra-die mismatch is accounted for — far smaller than the
        peaks caused by a deliberate 2x imbalance (Fig. 7)."""
        residual = build_dual_rail_xor("r")
        apply_process_variation(residual.netlist, sigma_ff=0.1, seed=5)
        waves = per_computation_currents(residual, ALL_PAIRS)
        residual_sig = signature_from_traces(waves[:2], waves[2:])

        unbalanced = build_dual_rail_xor("u")
        unbalanced.set_level_cap(3, 1, 16.0)
        waves_u = per_computation_currents(unbalanced, ALL_PAIRS)
        unbalanced_sig = signature_from_traces(waves_u[:2], waves_u[2:])

        assert residual_sig.max_abs() > 0
        assert residual_sig.max_abs() < 0.5 * unbalanced_sig.max_abs()
