"""Tests of the asynchronous-AES power-trace generator."""

import numpy as np
import pytest

from repro.asyncaes import (
    AesArchitecture,
    AesNetlistGenerator,
    AesPowerTraceGenerator,
    TraceGenerationError,
    TraceGeneratorConfig,
)
from repro.circuits import Netlist
from repro.crypto import random_key
from repro.electrical import GaussianNoise

KEY = random_key(16, seed=3)


@pytest.fixture(scope="module")
def small_setup():
    """A small (8-bit wide) AES netlist with default capacitances."""
    architecture = AesArchitecture(word_width=8, detail=0.05)
    netlist = AesNetlistGenerator(architecture, name="aes8").build()
    return architecture, netlist


class TestTraceGenerator:
    def test_trace_shape_and_positivity(self, small_setup):
        architecture, netlist = small_setup
        generator = AesPowerTraceGenerator(netlist, KEY, architecture=architecture)
        trace = generator.trace([0] * 16)
        assert len(trace) > 0
        assert np.all(trace.samples >= 0.0)
        assert trace.samples.max() > 0.0

    def test_traces_have_fixed_length(self, small_setup):
        architecture, netlist = small_setup
        generator = AesPowerTraceGenerator(netlist, KEY, architecture=architecture)
        a = generator.trace([0] * 16)
        b = generator.trace(list(range(16)))
        assert len(a) == len(b)
        assert a.dt == b.dt

    def test_determinism(self, small_setup):
        architecture, netlist = small_setup
        generator = AesPowerTraceGenerator(netlist, KEY, architecture=architecture)
        plaintext = list(range(16))
        assert np.allclose(generator.trace(plaintext).samples,
                           generator.trace(plaintext).samples)

    def test_balanced_rails_give_data_independent_traces(self, small_setup):
        """With identical rail capacitances the trace is plaintext independent —
        the ideal secured-QDI behaviour of Section II."""
        architecture, netlist = small_setup
        generator = AesPowerTraceGenerator(netlist, KEY, architecture=architecture)
        a = generator.trace([0x00] * 16)
        b = generator.trace([0xFF] * 16)
        assert np.allclose(a.samples, b.samples)

    def test_unbalanced_rail_creates_data_dependence(self, small_setup):
        """Unbalancing one rail capacitance makes the trace depend on the data."""
        architecture, _ = small_setup
        netlist = AesNetlistGenerator(architecture, name="aes8b").build()
        target = architecture.channel("addkey0_to_mux").rail_net(0, 1)
        netlist.set_routing_cap(target, netlist.net(target).routing_cap_ff + 40.0)
        generator = AesPowerTraceGenerator(netlist, KEY, architecture=architecture)
        # On the 8-bit-wide test architecture, bit 0 of the transferred word is
        # the least-significant bit of plaintext byte 3 XOR key byte 3:
        # flipping that plaintext bit flips which rail of the unbalanced
        # channel toggles.
        plaintext_a = [0x00] * 16
        plaintext_b = list(plaintext_a)
        plaintext_b[3] ^= 0x01
        a = generator.trace(plaintext_a)
        b = generator.trace(plaintext_b)
        assert not np.allclose(a.samples, b.samples)

    def test_trace_set_carries_plaintexts(self, small_setup):
        architecture, netlist = small_setup
        generator = AesPowerTraceGenerator(netlist, KEY, architecture=architecture)
        traces = generator.random_trace_set(5, seed=9)
        assert len(traces) == 5
        assert all(len(t.plaintext) == 16 for t in traces)

    def test_random_trace_set_reproducible(self, small_setup):
        architecture, netlist = small_setup
        generator = AesPowerTraceGenerator(netlist, KEY, architecture=architecture)
        a = generator.random_trace_set(3, seed=1)
        b = generator.random_trace_set(3, seed=1)
        assert a.plaintexts() == b.plaintexts()

    def test_noise_model_applied(self, small_setup):
        architecture, netlist = small_setup
        noisy_generator = AesPowerTraceGenerator(
            netlist, KEY, architecture=architecture,
            noise=GaussianNoise(sigma=1e-6, seed=2),
        )
        clean_generator = AesPowerTraceGenerator(netlist, KEY, architecture=architecture)
        plaintext = [0] * 16
        assert not np.allclose(noisy_generator.trace(plaintext).samples,
                               clean_generator.trace(plaintext).samples)

    def test_mismatched_netlist_rejected(self, small_setup):
        architecture, _ = small_setup
        with pytest.raises(TraceGenerationError):
            AesPowerTraceGenerator(Netlist("empty"), KEY, architecture=architecture)

    def test_target_slot_and_dissymmetry_helpers(self, small_setup):
        architecture, netlist = small_setup
        generator = AesPowerTraceGenerator(netlist, KEY, architecture=architecture)
        assert generator.target_slot() > 0
        assert generator.channel_dissymmetry("addkey0_to_mux", 0) == pytest.approx(0.0)
        assert generator.rail_cap_ff("addkey0_to_mux", 0, 0) > 0

    def test_config_disables_key_path(self, small_setup):
        architecture, netlist = small_setup
        with_key = AesPowerTraceGenerator(netlist, KEY, architecture=architecture)
        without_key = AesPowerTraceGenerator(
            netlist, KEY, architecture=architecture,
            config=TraceGeneratorConfig(include_key_path=False),
        )
        plaintext = [0] * 16
        assert with_key.trace(plaintext).integral() > \
            without_key.trace(plaintext).integral()
