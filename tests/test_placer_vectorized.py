"""Equivalence and invariant tests of the vectorized annealing placer.

The numpy engine (:mod:`repro.pnr.anneal`) must agree with the scalar
bookkeeping it replaced: per-net HPWL bit-matches the ``_WirelengthModel``
oracle, batched move deltas match the oracle's recompute up to float
summation order, the incremental extrema caches survive a full refinement
(``consistency_check``), placements stay legal and deterministic, and the
``security_weight`` objective measurably lowers the initial dissymmetry of
the placed flat AES.
"""

import random

import numpy as np
import pytest

from repro.asyncaes import AesArchitecture, AesNetlistGenerator
from repro.circuits import build_xor_bank
from repro.core import evaluate_netlist_channels
from repro.electrical import HCMOS9_LIKE
from repro.pnr import (
    AnnealingSchedule,
    FlatPlacer,
    Floorplan,
    HierarchicalPlacer,
    PlacementError,
    VectorPlacementEngine,
    cells_from_netlist,
    compile_connectivity,
    estimate_routing,
    flat_floorplan,
    initial_placement,
    run_flat_flow,
)
from repro.pnr.placement import _WirelengthModel


def _random_flat_start(netlist, seed=3):
    cells = cells_from_netlist(netlist, HCMOS9_LIKE)
    plan = flat_floorplan(cells, utilization=0.85)
    plan = Floorplan(die=plan.die, regions={})
    rng = random.Random(seed)
    initial_placement(cells, plan, rng=rng, ordered=False)
    for cell in cells.values():
        cell.x_um += rng.uniform(-5.0, 5.0)
        cell.y_um += rng.uniform(-5.0, 5.0)
    return cells, plan, rng


def _engine(netlist, cells, plan, **schedule_kwargs):
    schedule = AnnealingSchedule(**schedule_kwargs)
    return VectorPlacementEngine(
        netlist, cells, plan, schedule=schedule,
        technology=HCMOS9_LIKE, rng=np.random.default_rng(99))


class TestHpwlOracle:
    """Per-net HPWL of the engine bit-matches the scalar model."""

    def test_per_net_hpwl_bit_matches(self):
        netlist = build_xor_bank(6, "w").netlist
        cells, plan, _ = _random_flat_start(netlist)
        engine = _engine(netlist, cells, plan)
        oracle = _WirelengthModel(netlist, cells)
        conn = engine.conn
        checked = 0
        for i, name in enumerate(conn.net_names):
            if conn.wl_weight[i] <= 0:
                continue
            assert engine.hpwl[i] == oracle.lengths[name], name
            checked += 1
        assert checked == len(oracle.lengths)

    def test_total_wirelength_matches(self):
        netlist = build_xor_bank(6, "w").netlist
        cells, plan, _ = _random_flat_start(netlist)
        engine = _engine(netlist, cells, plan)
        oracle = _WirelengthModel(netlist, cells)
        assert engine.wirelength() == pytest.approx(oracle.total(), rel=1e-12)

    def test_delta_matches_oracle_on_random_moves(self):
        """Batched single-cell deltas equal the oracle's full recompute.

        The engine sums per-net deltas with ``np.bincount`` (sorted net
        order) while the oracle iterates a python set, so the totals agree
        to float summation order, not bit-exactly.
        """
        netlist = build_xor_bank(6, "w").netlist
        cells, plan, rng = _random_flat_start(netlist)
        engine = _engine(netlist, cells, plan)
        oracle = _WirelengthModel(netlist, cells)
        conn = engine.conn
        die = plan.die
        names = list(conn.names)
        for _ in range(120):
            i = rng.randrange(len(names))
            nx = rng.uniform(die.x_um, die.x_max)
            ny = rng.uniform(die.y_um, die.y_max)
            a = np.array([i])
            delta, _, _, _ = engine._evaluate(
                a, np.array([nx]), np.array([ny]),
                np.array([-1]), np.array([engine.x[i]]),
                np.array([engine.y[i]]), 0.0)
            name = names[i]
            cell = cells[name]
            old = (cell.x_um, cell.y_um)
            cell.x_um, cell.y_um = nx, ny
            oracle_delta = oracle.delta_for_move([name])
            cell.x_um, cell.y_um = old
            oracle.delta_for_move([name])  # restore oracle state
            assert delta[0] == pytest.approx(oracle_delta, rel=1e-9, abs=1e-9)

    def test_consistency_after_refine(self):
        netlist = build_xor_bank(6, "w").netlist
        cells, plan, _ = _random_flat_start(netlist)
        engine = _engine(netlist, cells, plan, moves_per_cell=30.0)
        engine.cog_sweeps(6)
        engine.legalize()
        engine.refine()
        engine.consistency_check()
        assert engine.moves_committed > 0

    def test_consistency_after_refine_with_security(self):
        netlist = build_xor_bank(6, "w").netlist
        cells, plan, _ = _random_flat_start(netlist)
        engine = _engine(netlist, cells, plan, moves_per_cell=30.0,
                         security_weight=0.5)
        assert engine.security is not None
        engine.cog_sweeps(6)
        engine.legalize()
        engine.refine()
        engine.consistency_check()


class TestConnectivityCompilation:
    def test_cache_keyed_on_topology_version(self):
        netlist = build_xor_bank(3, "w").netlist
        cells = cells_from_netlist(netlist, HCMOS9_LIKE)
        conn1 = compile_connectivity(netlist, cells)
        conn2 = compile_connectivity(netlist, cells)
        assert conn1 is conn2
        netlist.add_instance("late", "INV",
                             {"A": netlist.net_names()[0], "Z": "late_out"})
        cells = cells_from_netlist(netlist, HCMOS9_LIKE)
        conn3 = compile_connectivity(netlist, cells)
        assert conn3 is not conn1

    def test_csr_round_trip(self):
        netlist = build_xor_bank(4, "w").netlist
        cells = cells_from_netlist(netlist, HCMOS9_LIKE)
        conn = compile_connectivity(netlist, cells)
        # Forward and reverse CSR describe the same bipartite graph.
        forward = {(int(conn.net_owner[k]), int(conn.net_cells[k]))
                   for k in range(conn.net_cells.size)}
        reverse = set()
        for cell_id in range(conn.n_cells):
            for k in range(conn.cell_net_ptr[cell_id],
                           conn.cell_net_ptr[cell_id + 1]):
                reverse.add((int(conn.cell_nets[k]), cell_id))
        assert forward == reverse


class TestPlacerInvariants:
    def test_flat_placement_legal_and_deterministic(self):
        netlist = build_xor_bank(6, "w").netlist
        p1 = FlatPlacer(seed=4, effort=0.5).place(netlist)
        p2 = FlatPlacer(seed=4, effort=0.5).place(netlist)
        assert p1.check_legality() == []
        for name in p1.cells:
            assert p1.position_of(name) == p2.position_of(name)

    def test_hierarchical_placement_legal_and_deterministic(self):
        netlist = build_xor_bank(6, "w").netlist
        p1 = HierarchicalPlacer(seed=4, effort=0.5).place(netlist)
        p2 = HierarchicalPlacer(seed=4, effort=0.5).place(netlist)
        assert p1.check_legality() == []
        for name in p1.cells:
            assert p1.position_of(name) == p2.position_of(name)

    def test_security_weighted_placement_stays_legal(self):
        netlist = build_xor_bank(6, "w").netlist
        placement = FlatPlacer(seed=4, effort=0.5,
                               security_weight=0.5).place(netlist)
        assert placement.check_legality() == []

    def test_reference_schedule_selects_scalar_path(self):
        netlist = build_xor_bank(4, "w").netlist
        schedule = AnnealingSchedule(reference=True)
        placement = FlatPlacer(seed=2, effort=0.4,
                               schedule=schedule).place(netlist)
        assert placement.check_legality() == []

    def test_reference_schedule_rejects_security_weight(self):
        netlist = build_xor_bank(2, "w").netlist
        schedule = AnnealingSchedule(reference=True, security_weight=0.5)
        with pytest.raises(PlacementError):
            FlatPlacer(seed=2, schedule=schedule).place(netlist)


class TestAesScaleQualityAndSecurity:
    """AES-scale statements: quality bound and the security objective."""

    @pytest.fixture(scope="class")
    def aes_architecture(self):
        return AesArchitecture(word_width=8, detail=0.1)

    def _netlist(self, architecture):
        return AesNetlistGenerator(architecture, name="aes_placer").build()

    def test_quality_bound_vs_reference(self, aes_architecture):
        """Vectorized HPWL <= 1.05x the scalar reference at equal budget."""
        ref_netlist = self._netlist(aes_architecture)
        ref_placement = FlatPlacer(
            seed=5, effort=0.5,
            schedule=AnnealingSchedule(reference=True)).place(ref_netlist)
        ref_wl = estimate_routing(
            ref_netlist, ref_placement).total_wirelength_um()

        vec_netlist = self._netlist(aes_architecture)
        vec_placement = FlatPlacer(seed=5, effort=0.5).place(vec_netlist)
        vec_wl = estimate_routing(
            vec_netlist, vec_placement).total_wirelength_um()

        assert vec_wl <= 1.05 * ref_wl

    def test_security_weight_lowers_initial_dissymmetry(self, aes_architecture):
        """security_weight > 0 strictly lowers the placed flat AES's
        initial max d_A versus the HPWL-only placement."""
        plain = self._netlist(aes_architecture)
        run_flat_flow(plain, seed=5)
        plain_report = evaluate_netlist_channels(plain)

        secured = self._netlist(aes_architecture)
        run_flat_flow(secured, seed=5, security_weight=2.0)
        secured_report = evaluate_netlist_channels(secured)

        assert (secured_report.max_dissymmetry
                < plain_report.max_dissymmetry)
        assert (secured_report.mean_dissymmetry
                < plain_report.mean_dissymmetry)


class TestScheduleSatellites:
    """Satellite regressions: effort linearity and error messages."""

    def test_move_budget_scales_linearly_with_effort(self):
        schedule = AnnealingSchedule(moves_per_cell=15.0)
        totals = {effort: sum(schedule.scaled(effort).move_budget(100))
                  for effort in (0.1, 0.3, 1.0)}
        assert totals[1.0] == 1500
        assert totals[0.1] == pytest.approx(0.1 * totals[1.0], abs=1)
        assert totals[0.3] == pytest.approx(0.3 * totals[1.0], abs=1)

    def test_move_budget_sums_exactly(self):
        schedule = AnnealingSchedule(moves_per_cell=7.3,
                                     temperature_steps=20)
        budget = schedule.move_budget(41)
        assert sum(budget) == round(7.3 * 41)
        assert len(budget) <= 20
        assert max(budget) - min(budget) <= 1

    def test_tiny_budget_shrinks_step_count(self):
        schedule = AnnealingSchedule(moves_per_cell=0.1,
                                     temperature_steps=20)
        budget = schedule.move_budget(30)
        assert sum(budget) == 3
        assert len(budget) == 3  # no padding steps of one move each

    def test_position_of_unknown_cell_raises_placement_error(self):
        netlist = build_xor_bank(2, "w").netlist
        placement = FlatPlacer(seed=0, effort=0.3).place(netlist)
        with pytest.raises(PlacementError, match="no_such_cell"):
            placement.position_of("no_such_cell")

    def test_check_legality_names_cell_and_fence(self):
        netlist = build_xor_bank(2, "w").netlist
        placement = HierarchicalPlacer(seed=0, effort=0.3).place(netlist)
        offender = next(name for name, cell in placement.cells.items()
                        if cell.block)
        placement.cells[offender].x_um = placement.floorplan.die.x_max + 50.0
        problems = placement.check_legality()
        assert problems
        message = problems[0]
        assert offender in message
        # The offending fence rect's extent is spelled out in the message.
        assert "fence [" in message and "] x [" in message
