"""Tests of the QDI cell library gate behaviours."""

import pytest

from repro.circuits import DEFAULT_LIBRARY, Logic, default_library
from repro.circuits.gates import CellLibrary


def _eval(cell_name, previous=Logic.LOW, **pins):
    cell = DEFAULT_LIBRARY.get(cell_name)
    values = {pin: (Logic.HIGH if level else Logic.LOW) for pin, level in pins.items()}
    return cell.compute(values, previous)


class TestCombinationalCells:
    def test_inverter(self):
        assert _eval("INV", A=0) is Logic.HIGH
        assert _eval("INV", A=1) is Logic.LOW

    def test_buffer(self):
        assert _eval("BUF", A=1) is Logic.HIGH
        assert _eval("BUF", A=0) is Logic.LOW

    @pytest.mark.parametrize("a,b,expected", [(0, 0, 0), (0, 1, 0), (1, 0, 0), (1, 1, 1)])
    def test_and2(self, a, b, expected):
        assert _eval("AND2", A=a, B=b) is (Logic.HIGH if expected else Logic.LOW)

    @pytest.mark.parametrize("a,b,expected", [(0, 0, 0), (0, 1, 1), (1, 0, 1), (1, 1, 1)])
    def test_or2(self, a, b, expected):
        assert _eval("OR2", A=a, B=b) is (Logic.HIGH if expected else Logic.LOW)

    @pytest.mark.parametrize("a,b,expected", [(0, 0, 1), (0, 1, 0), (1, 0, 0), (1, 1, 0)])
    def test_nor2(self, a, b, expected):
        assert _eval("NOR2", A=a, B=b) is (Logic.HIGH if expected else Logic.LOW)

    @pytest.mark.parametrize("a,b,expected", [(0, 0, 0), (0, 1, 1), (1, 0, 1), (1, 1, 0)])
    def test_xor2(self, a, b, expected):
        assert _eval("XOR2", A=a, B=b) is (Logic.HIGH if expected else Logic.LOW)

    def test_or3_or4(self):
        assert _eval("OR3", A=0, B=0, C=0) is Logic.LOW
        assert _eval("OR3", A=0, B=1, C=0) is Logic.HIGH
        assert _eval("OR4", A=0, B=0, C=0, D=1) is Logic.HIGH
        assert _eval("NOR4", A=0, B=0, C=0, D=0) is Logic.HIGH


class TestMullerGates:
    """The C-element truth table of Fig. 5: Z = XY + Z(X + Y)."""

    def test_all_high_sets_output(self):
        assert _eval("MULLER2", previous=Logic.LOW, A=1, B=1) is Logic.HIGH

    def test_all_low_clears_output(self):
        assert _eval("MULLER2", previous=Logic.HIGH, A=0, B=0) is Logic.LOW

    @pytest.mark.parametrize("previous", [Logic.LOW, Logic.HIGH])
    @pytest.mark.parametrize("a,b", [(0, 1), (1, 0)])
    def test_disagreement_holds_state(self, previous, a, b):
        assert _eval("MULLER2", previous=previous, A=a, B=b) is previous

    def test_muller3(self):
        assert _eval("MULLER3", A=1, B=1, C=1) is Logic.HIGH
        assert _eval("MULLER3", previous=Logic.HIGH, A=1, B=1, C=0) is Logic.HIGH
        assert _eval("MULLER3", previous=Logic.HIGH, A=0, B=0, C=0) is Logic.LOW

    def test_reset_dominates(self):
        assert _eval("MULLER2_R", previous=Logic.HIGH, A=1, B=1, RST=1) is Logic.LOW
        assert _eval("MULLER2_R", previous=Logic.LOW, A=1, B=1, RST=0) is Logic.HIGH
        assert _eval("MULLER2_R", previous=Logic.HIGH, A=1, B=0, RST=0) is Logic.HIGH

    def test_set_version(self):
        assert _eval("MULLER2_S", previous=Logic.LOW, A=0, B=0, SETN=0) is Logic.HIGH
        assert _eval("MULLER2_S", previous=Logic.HIGH, A=0, B=0, SETN=1) is Logic.LOW

    def test_sequential_flag(self):
        assert DEFAULT_LIBRARY.get("MULLER2").is_sequential
        assert not DEFAULT_LIBRARY.get("OR2").is_sequential


class TestCellLibrary:
    def test_default_library_contents(self):
        library = default_library()
        for name in ("INV", "BUF", "AND2", "OR2", "NOR2", "XOR2",
                     "MULLER2", "MULLER3", "MULLER2_R"):
            assert name in library

    def test_unknown_cell_raises(self):
        with pytest.raises(KeyError):
            DEFAULT_LIBRARY.get("NO_SUCH_CELL")

    def test_duplicate_registration_rejected(self):
        library = CellLibrary()
        cell = DEFAULT_LIBRARY.get("INV")
        library.add(cell)
        with pytest.raises(ValueError):
            library.add(cell)

    def test_pin_names_include_output(self):
        cell = DEFAULT_LIBRARY.get("MULLER2_R")
        assert set(cell.pin_names) == {"A", "B", "RST", "Z"}

    def test_electrical_parameters_positive(self):
        for cell in DEFAULT_LIBRARY:
            assert cell.input_cap_ff > 0
            assert cell.parasitic_cap_ff > 0
            assert cell.drive_ohm > 0
            assert cell.area_um2 > 0

    def test_names_sorted(self):
        names = DEFAULT_LIBRARY.names()
        assert names == sorted(names)
        assert len(DEFAULT_LIBRARY) == len(names)
