"""Equivalence tests of the batched trace/attack engine.

The vectorized paths (``TraceSet`` matrices, ``selection_matrix``,
multi-guess ``dpa_attack``, ``trace_batch``, incremental
``messages_to_disclosure``) must produce the same numbers as the per-trace,
per-guess reference formulation — on synthetic traces, on the XOR pipeline
and on the asynchronous-AES pipeline.
"""

import numpy as np
import pytest

from repro.asyncaes import (
    AesArchitecture,
    AesNetlistGenerator,
    AesPowerTraceGenerator,
    TraceGenerationError,
    word_digits,
)
from repro.circuits import build_dual_rail_xor
from repro.core import (
    AesAddRoundKeySelection,
    AesSboxSelection,
    AttackCampaign,
    DesSboxSelection,
    DPAError,
    HammingWeightSelection,
    TraceSet,
    dpa_attack,
    dpa_attack_reference,
    messages_to_disclosure,
    selection_matrix,
)
from repro.crypto import AES, SBOX, encrypt_states_batch, random_key
from repro.crypto.keys import PlaintextGenerator, bit_of
from repro.electrical import (
    BackgroundActivityNoise,
    CompositeNoise,
    GaussianNoise,
    NoNoise,
    NoiseModel,
    Waveform,
    per_computation_currents,
    stack_aligned,
)

SECRET_KEY_BYTE = 0x3C
LEAK_SAMPLE = 25
TRACE_LENGTH = 60


def _build_trace_set(count, *, leak_delta=1e-4, noise_sigma=1e-5, seed=0,
                     bit_index=0):
    """Traces leaking the first-round SubBytes output bit of byte 0."""
    rng = np.random.default_rng(seed)
    plaintexts = PlaintextGenerator(seed=seed + 1).batch(count)
    traces = TraceSet()
    for plaintext in plaintexts:
        value = bit_of(SBOX[plaintext[0] ^ SECRET_KEY_BYTE], bit_index)
        samples = rng.normal(0.0, noise_sigma, TRACE_LENGTH)
        samples[LEAK_SAMPLE] += leak_delta * value
        traces.add(Waveform(samples, 1e-9, 0.0), plaintext)
    return traces


def _assert_attacks_equal(batched, reference):
    assert [r.guess for r in batched.results] == [r.guess for r in reference.results]
    assert np.allclose([r.peak for r in batched.results],
                       [r.peak for r in reference.results])
    assert np.allclose([r.peak_time for r in batched.results],
                       [r.peak_time for r in reference.results])
    assert np.allclose([r.rms for r in batched.results],
                       [r.rms for r in reference.results])
    assert [r.guess for r in batched.ranking()] == \
        [r.guess for r in reference.ranking()]


def _mtd_reference(traces, selection, correct, *, start, step, stable_runs=1,
                   guesses=None):
    """The old O(N^2 * m) formulation: one full re-attack per prefix size."""
    consecutive = 0
    first = None
    count = start
    while count <= len(traces):
        attack = dpa_attack_reference(traces.subset(count), selection,
                                      guesses=guesses)
        if attack.rank_of(correct) == 1:
            if consecutive == 0:
                first = count
            consecutive += 1
            if consecutive >= stable_runs:
                return first
        else:
            consecutive = 0
            first = None
        count += step
    return None


# ------------------------------------------------------------------ TraceSet
class TestTraceSetMatrix:
    def test_matrix_cached_and_invalidated_on_add(self):
        traces = _build_trace_set(8)
        first = traces.matrix()
        assert traces.matrix() is first          # aligned exactly once
        traces.add(Waveform(np.zeros(TRACE_LENGTH), 1e-9, 0.0), [0] * 16)
        rebuilt = traces.matrix()
        assert rebuilt is not first
        assert rebuilt.shape == (9, TRACE_LENGTH)

    def test_time_base_uses_cached_alignment(self):
        traces = _build_trace_set(4)
        base = traces.time_base()
        assert base.dt == pytest.approx(1e-9)
        assert np.allclose(base.samples, traces.matrix()[0])

    def test_from_matrix_roundtrip(self):
        matrix = np.arange(12, dtype=float).reshape(3, 4)
        plaintexts = [[i] * 16 for i in range(3)]
        traces = TraceSet.from_matrix(matrix, plaintexts, 1e-9)
        assert len(traces) == 3
        assert traces.matrix() is matrix
        assert traces[1].plaintext == [1] * 16
        assert np.allclose(traces[2].waveform.samples, matrix[2])
        assert traces.plaintext_matrix().shape == (3, 16)

    def test_from_matrix_validates(self):
        with pytest.raises(DPAError):
            TraceSet.from_matrix(np.zeros(4), [[0] * 16], 1e-9)
        with pytest.raises(DPAError):
            TraceSet.from_matrix(np.zeros((2, 4)), [[0] * 16], 1e-9)
        with pytest.raises(DPAError):
            TraceSet.from_matrix(np.zeros((1, 4)), [[0] * 16], 0.0)

    def test_subset_shares_matrix_rows(self):
        traces = _build_trace_set(10)
        matrix = traces.matrix()
        prefix = traces.subset(4)
        assert len(prefix) == 4
        assert np.shares_memory(prefix.matrix(), matrix)
        assert prefix.plaintexts() == traces.plaintexts()[:4]

    def test_plaintext_matrix_rejects_ragged(self):
        traces = TraceSet()
        traces.add(Waveform(np.zeros(4), 1e-9), [1, 2, 3])
        traces.add(Waveform(np.zeros(4), 1e-9), [1, 2])
        with pytest.raises(DPAError):
            traces.plaintext_matrix()

    def test_stack_aligned_matches_per_waveform_alignment(self):
        waves = [Waveform(np.ones(5), 1e-9, 0.0),
                 Waveform(2 * np.ones(3), 1e-9, 2e-9)]
        matrix, dt, t0 = stack_aligned(waves)
        assert dt == pytest.approx(1e-9)
        assert t0 == pytest.approx(0.0)
        assert np.allclose(matrix[0], [1, 1, 1, 1, 1])
        assert np.allclose(matrix[1], [0, 0, 2, 2, 2])


# ---------------------------------------------------------- selection matrix
class TestSelectionMatrix:
    PLAINTEXTS = PlaintextGenerator(seed=3).batch(40)

    def _check(self, selection, guesses):
        matrix = selection_matrix(selection, self.PLAINTEXTS, guesses)
        expected = np.array([[selection(p, g) for p in self.PLAINTEXTS]
                             for g in guesses])
        assert matrix.shape == (len(guesses), len(self.PLAINTEXTS))
        assert np.array_equal(matrix, expected)

    def test_aes_addkey(self):
        self._check(AesAddRoundKeySelection(byte_index=3, bit_index=5), range(256))

    def test_aes_sbox(self):
        self._check(AesSboxSelection(byte_index=1, bit_index=2), range(256))

    def test_des_sbox(self):
        self._check(DesSboxSelection(sbox_index=2, bit_index=1), range(64))

    def test_hamming_weight(self):
        inner = AesAddRoundKeySelection(byte_index=0, bit_index=0)
        self._check(HammingWeightSelection(inner=inner, threshold=4), range(0, 256, 8))

    def test_generic_fallback(self):
        class OddPlaintextSelection:
            name = "odd"

            def guesses(self):
                return range(2)

            def __call__(self, plaintext, key_guess):
                return (plaintext[0] ^ key_guess) & 1

        self._check(OddPlaintextSelection(), [0, 1])

    def test_hamming_weight_with_custom_inner(self):
        """A protocol-only inner (no intermediate_matrix) keeps working."""

        class WideInner:
            name = "wide"
            byte_index = 0
            bit_index = 0

            def guesses(self):
                return range(4)

            def intermediate(self, plaintext, key_guess):
                # 16-bit intermediate: exercises weights beyond one byte.
                return (plaintext[0] ^ key_guess) | (plaintext[1] << 8)

            def __call__(self, plaintext, key_guess):
                return self.intermediate(plaintext, key_guess) & 1

        self._check(HammingWeightSelection(inner=WideInner(), threshold=6),
                    [0, 1, 2, 3])


# ------------------------------------------------------------ attack engine
class TestBatchedAttackEquivalence:
    def test_synthetic_traces_full_guess_space(self):
        traces = _build_trace_set(200, noise_sigma=2e-5)
        selection = AesSboxSelection(byte_index=0, bit_index=0)
        batched = dpa_attack(traces, selection)
        reference = dpa_attack_reference(traces, selection)
        _assert_attacks_equal(batched, reference)
        assert batched.best_guess == SECRET_KEY_BYTE

    def test_bias_waveforms_match(self):
        traces = _build_trace_set(64)
        selection = AesSboxSelection(byte_index=0, bit_index=0)
        guesses = [SECRET_KEY_BYTE, 0x00, 0xFF]
        batched = dpa_attack(traces, selection, guesses=guesses, keep_bias=True)
        reference = dpa_attack_reference(traces, selection, guesses=guesses,
                                         keep_bias=True)
        for guess in guesses:
            assert np.allclose(batched.result_for(guess).bias.samples,
                               reference.result_for(guess).bias.samples)

    def test_single_sided_partition_matches_reference(self):
        """Degenerate single-class partitions give zero-peak results."""
        traces = TraceSet()
        for _ in range(6):
            traces.add(Waveform(np.ones(8), 1e-9), [0] * 16)
        selection = AesAddRoundKeySelection(byte_index=0, bit_index=0)
        batched = dpa_attack(traces, selection, guesses=range(4))
        reference = dpa_attack_reference(traces, selection, guesses=range(4))
        _assert_attacks_equal(batched, reference)
        assert all(r.peak == 0.0 and r.bias is None for r in batched.results)

    def test_xor_pipeline_equivalence(self):
        """Batched attack on the gate-level XOR current traces."""
        xor = build_dual_rail_xor("xeq")
        xor.set_level_cap(3, 1, 24.0)
        pairs = [(0, 0), (1, 1), (0, 1), (1, 0)]
        traces = TraceSet()
        for (a, b), waveform in zip(pairs, per_computation_currents(xor, pairs)):
            traces.add(waveform, [a ^ b] + [0] * 15)
        selection = AesAddRoundKeySelection(byte_index=0, bit_index=0)
        batched = dpa_attack(traces, selection, guesses=[0, 1], keep_bias=True)
        reference = dpa_attack_reference(traces, selection, guesses=[0, 1],
                                         keep_bias=True)
        _assert_attacks_equal(batched, reference)
        assert batched.result_for(0).peak > 0


# ------------------------------------------------------- AES batched tracing
@pytest.fixture(scope="module")
def unbalanced_aes():
    architecture = AesArchitecture(word_width=8, detail=0.05)
    netlist = AesNetlistGenerator(architecture, name="aes8batch").build()
    target = architecture.channel("addkey0_to_mux").rail_net(0, 1)
    netlist.set_routing_cap(target, netlist.net(target).routing_cap_ff + 40.0)
    return architecture, netlist


class TestTraceBatch:
    KEY = random_key(16, seed=3)

    def test_batch_matches_per_trace_reference(self, unbalanced_aes):
        architecture, netlist = unbalanced_aes
        generator = AesPowerTraceGenerator(netlist, self.KEY,
                                           architecture=architecture)
        plaintexts = PlaintextGenerator(seed=8).batch(12)
        reference = np.vstack([generator.trace(p).samples for p in plaintexts])
        batch = generator.trace_batch(plaintexts)
        assert np.allclose(batch.matrix(), reference)
        assert batch.dt == pytest.approx(generator.config.sample_period_s)
        assert batch.plaintexts() == [list(p) for p in plaintexts]

    def test_batch_attack_matches_reference_attack(self, unbalanced_aes):
        architecture, netlist = unbalanced_aes
        generator = AesPowerTraceGenerator(netlist, self.KEY,
                                           architecture=architecture)
        traces = generator.trace_batch(PlaintextGenerator(seed=4).batch(48))
        selection = AesAddRoundKeySelection(byte_index=3, bit_index=0)
        batched = dpa_attack(traces, selection, guesses=range(0, 256, 16))
        reference = dpa_attack_reference(traces, selection,
                                         guesses=range(0, 256, 16))
        _assert_attacks_equal(batched, reference)

    def test_empty_batch(self, unbalanced_aes):
        architecture, netlist = unbalanced_aes
        generator = AesPowerTraceGenerator(netlist, self.KEY,
                                           architecture=architecture)
        assert len(generator.trace_batch([])) == 0

    def test_batch_noise_applied_once_per_matrix(self, unbalanced_aes):
        architecture, netlist = unbalanced_aes
        noisy = AesPowerTraceGenerator(netlist, self.KEY,
                                       architecture=architecture,
                                       noise=GaussianNoise(sigma=1e-6, seed=2))
        clean = AesPowerTraceGenerator(netlist, self.KEY,
                                       architecture=architecture)
        plaintexts = PlaintextGenerator(seed=8).batch(4)
        noisy_matrix = noisy.trace_batch(plaintexts).matrix()
        clean_matrix = clean.trace_batch(plaintexts).matrix()
        assert noisy_matrix.shape == clean_matrix.shape
        assert not np.allclose(noisy_matrix, clean_matrix)
        residual = noisy_matrix - clean_matrix
        assert abs(residual.std() - 1e-6) < 2e-7


# -------------------------------------------------------------- batch cipher
class TestBatchCipher:
    def test_states_match_scalar_reference(self):
        key = random_key(16, seed=11)
        plaintexts = PlaintextGenerator(seed=12).batch(16)
        batch = encrypt_states_batch(key, plaintexts)
        cipher = AES(key)
        for index, plaintext in enumerate(plaintexts):
            reference = cipher.encrypt_with_trace(plaintext)
            for label, state in reference.states.items():
                assert batch[label][index].tolist() == state, label

    def test_rejects_malformed_batches(self):
        from repro.crypto import AESError

        with pytest.raises(AESError):
            encrypt_states_batch([0] * 16, [[0] * 15])
        with pytest.raises(AESError):
            encrypt_states_batch([0] * 16, [[300] + [0] * 15])


# -------------------------------------------------------------- radix rails
class TestChannelRadix:
    def test_word_digits_dual_rail(self):
        digits = word_digits([0b1011], width=4, radix=2)
        assert digits.tolist() == [[1, 1, 0, 1]]

    def test_word_digits_one_of_four(self):
        # 27 = 1*16 + 2*4 + 3 -> digits (LSD first) 3, 2, 1
        digits = word_digits([27], width=3, radix=4)
        assert digits.tolist() == [[3, 2, 1]]

    def test_word_digits_rejects_bad_radix(self):
        with pytest.raises(TraceGenerationError):
            word_digits([1], width=2, radix=1)

    def test_cap_matrix_honors_radix(self, unbalanced_aes):
        architecture, netlist = unbalanced_aes
        generator = AesPowerTraceGenerator(netlist, random_key(16, seed=3),
                                           architecture=architecture)
        bus = architecture.channel("addkey0_to_mux")
        caps = generator._bus_cap_matrix(bus.name, bus.width)
        assert caps.shape == (bus.width, bus.radix)
        for rail in range(bus.radix):
            assert caps[1, rail] == pytest.approx(
                generator.rail_cap_ff(bus.name, 1, rail))


# -------------------------------------------------- messages to disclosure
class TestIncrementalDisclosure:
    SELECTION = AesSboxSelection(byte_index=0, bit_index=0)
    GUESSES = list(range(0, 256, 4)) + [SECRET_KEY_BYTE]

    def test_matches_reattack_reference(self):
        traces = _build_trace_set(300, noise_sigma=2e-5)
        fast = messages_to_disclosure(traces, self.SELECTION, SECRET_KEY_BYTE,
                                      guesses=self.GUESSES, start=50, step=50)
        slow = _mtd_reference(traces, self.SELECTION, SECRET_KEY_BYTE,
                              guesses=self.GUESSES, start=50, step=50)
        assert fast == slow
        assert fast is not None

    def test_stable_runs_matches_reference(self):
        traces = _build_trace_set(300, leak_delta=6e-5, noise_sigma=4e-5, seed=9)
        for stable_runs in (1, 2, 3):
            fast = messages_to_disclosure(
                traces, self.SELECTION, SECRET_KEY_BYTE, guesses=self.GUESSES,
                start=30, step=30, stable_runs=stable_runs)
            slow = _mtd_reference(
                traces, self.SELECTION, SECRET_KEY_BYTE, guesses=self.GUESSES,
                start=30, step=30, stable_runs=stable_runs)
            assert fast == slow

    def test_stable_runs_requires_persistence(self):
        traces = _build_trace_set(200, noise_sigma=2e-5)
        single = messages_to_disclosure(traces, self.SELECTION, SECRET_KEY_BYTE,
                                        guesses=self.GUESSES, start=40, step=40,
                                        stable_runs=1)
        stable = messages_to_disclosure(traces, self.SELECTION, SECRET_KEY_BYTE,
                                        guesses=self.GUESSES, start=40, step=40,
                                        stable_runs=3)
        assert single is not None
        # A disclosure that must persist over three prefix sizes can only be
        # the same or earlier-starting-but-confirmed-later, never easier.
        assert stable is None or stable <= 200 - 2 * 40

    def test_never_disclosing_set(self):
        traces = _build_trace_set(150, leak_delta=0.0, noise_sigma=1e-5)
        assert messages_to_disclosure(traces, self.SELECTION, SECRET_KEY_BYTE,
                                      guesses=self.GUESSES,
                                      start=50, step=50) is None

    def test_degenerate_single_class_partition(self):
        """Constant plaintexts: every guess yields a one-sided partition."""
        traces = TraceSet()
        for _ in range(64):
            traces.add(Waveform(np.ones(8), 1e-9), [0] * 16)
        selection = AesAddRoundKeySelection(byte_index=0, bit_index=0)
        # All peaks are zero; the correct guess (not first in the space) can
        # never rank first, matching the re-attack reference.
        assert messages_to_disclosure(traces, selection, 5,
                                      start=16, step=16) is None
        assert _mtd_reference(traces, selection, 5, start=16, step=16) is None

    def test_invalid_arguments(self):
        traces = _build_trace_set(16)
        with pytest.raises(DPAError):
            messages_to_disclosure(traces, self.SELECTION, SECRET_KEY_BYTE,
                                   start=1)
        with pytest.raises(DPAError):
            messages_to_disclosure(traces, self.SELECTION, 0x11,
                                   guesses=[0x22, 0x33], start=8)


# -------------------------------------------------------------- batch noise
class TestBatchNoise:
    def test_no_noise_copies(self):
        matrix = np.ones((3, 5))
        out = NoNoise().apply_matrix(matrix)
        assert np.array_equal(out, matrix)
        assert out is not matrix

    def test_gaussian_statistics(self):
        out = GaussianNoise(sigma=0.5, seed=1).apply_matrix(np.zeros((200, 100)))
        assert out.shape == (200, 100)
        assert abs(out.std() - 0.5) < 0.02
        assert abs(out.mean()) < 0.01

    def test_gaussian_zero_sigma(self):
        matrix = np.ones((2, 4))
        assert np.array_equal(GaussianNoise(sigma=0.0).apply_matrix(matrix), matrix)

    def test_background_activity(self):
        out = BackgroundActivityNoise(pulse_rate_per_sample=0.5, amplitude=1.0,
                                      seed=3).apply_matrix(np.zeros((50, 40)))
        assert (out >= 0).all()
        assert out.sum() > 0

    def test_composite_chains(self):
        noise = CompositeNoise(models=(GaussianNoise(sigma=0.1, seed=0),
                                       BackgroundActivityNoise(0.1, 1.0, seed=1)))
        out = noise.apply_matrix(np.zeros((10, 20)))
        assert out.shape == (10, 20)
        assert out.std() > 0

    def test_base_class_fallback_uses_per_trace_apply(self):
        class DtScaled(NoiseModel):
            """In-place and dt-dependent: the worst case for the fallback."""

            def apply(self, waveform):
                waveform.samples += waveform.dt
                return waveform

        matrix = np.zeros((3, 4))
        out = DtScaled().apply_matrix(matrix, 2.5)
        assert np.allclose(out, 2.5)               # real dt reaches apply()
        assert np.array_equal(matrix, np.zeros((3, 4)))  # caller's matrix intact

    def test_composite_forwards_time_base(self):
        class NeedsDt(NoiseModel):
            def apply(self, waveform):
                waveform.samples += waveform.dt
                return waveform

        noise = CompositeNoise(models=(NeedsDt(), NeedsDt()))
        out = noise.apply_matrix(np.zeros((2, 3)), 1e-9)
        assert np.allclose(out, 2e-9)


# ---------------------------------------------------------------- campaign
class TestAttackCampaign:
    def test_flat_vs_balanced_comparison(self, unbalanced_aes):
        architecture, _ = unbalanced_aes
        leaky_netlist = AesNetlistGenerator(architecture, name="aes8leak").build()
        # Unbalance the S-box output channel: on the 8-bit architecture its
        # bit 0 carries the LSB of SBOX(plaintext[3] ^ key[3]), so the S-box
        # selection on byte 3 recovers the key byte (wrong guesses
        # decorrelate through the S-box).
        target = architecture.channel("bytesub0_to_sr0").rail_net(0, 1)
        leaky_netlist.set_routing_cap(
            target, leaky_netlist.net(target).routing_cap_ff + 40.0)
        balanced_netlist = AesNetlistGenerator(architecture,
                                               name="aes8bal").build()
        key = random_key(16, seed=3)
        campaign = AttackCampaign(key, architecture=architecture,
                                  mtd_start=24, mtd_step=24)
        campaign.add_design("leaky", leaky_netlist)
        campaign.add_design("balanced", balanced_netlist)
        campaign.add_selection(AesSboxSelection(byte_index=3, bit_index=0))
        result = campaign.run(trace_count=96, seed=5)

        assert len(result.rows) == 2
        leaky = result.row("leaky")
        balanced = result.row("balanced")
        assert leaky.correct_guess == key[3]
        # The unbalanced design leaks through the S-box output channel ...
        assert leaky.rank_of_correct == 1
        assert leaky.disclosure is not None
        # ... while the balanced one shows a flat bias for every guess.
        assert balanced.best_peak == pytest.approx(0.0, abs=1e-15)
        assert balanced.disclosure is None
        table = result.table()
        assert "leaky" in table and "balanced" in table

    def test_campaign_with_custom_trace_source_and_noise(self):
        def source(plaintexts, noise):
            rng = np.random.default_rng(0)
            matrix = np.zeros((len(plaintexts), 30))
            for row, plaintext in zip(matrix, plaintexts):
                bit = bit_of(SBOX[plaintext[0] ^ SECRET_KEY_BYTE], 0)
                row[:] = rng.normal(0.0, 1e-6, 30)
                row[7] += 1e-4 * bit
            if noise is not None:
                matrix = noise.apply_matrix(matrix)
            return TraceSet.from_matrix(matrix, plaintexts, 1e-9)

        campaign = AttackCampaign(mtd_start=64, mtd_step=64)
        campaign.add_design("synthetic", trace_source=source)
        campaign.add_selection(AesSboxSelection(byte_index=0, bit_index=0),
                               correct_guess=SECRET_KEY_BYTE)
        campaign.add_noise("noiseless")
        campaign.add_noise("sigma=1e-5", lambda: GaussianNoise(1e-5, seed=4))
        result = campaign.run(trace_count=192, seed=1)

        assert len(result.rows) == 2
        clean = result.row("synthetic", noise="noiseless")
        assert clean.rank_of_correct == 1
        assert clean.disclosure is not None

    def test_campaign_validates_configuration(self):
        campaign = AttackCampaign()
        with pytest.raises(ValueError):
            campaign.run(trace_count=8)
        with pytest.raises(ValueError):
            campaign.add_design("bad")
        with pytest.raises(ValueError):
            # netlist designs need a key
            campaign.add_design("aes", AesNetlistGenerator(
                AesArchitecture(word_width=8, detail=0.05), name="aes8nk").build())
